(* The universal construction, end to end, at a FIFO queue.

   One sequential specification ([Obj.Queue]: ~40 lines of pure code)
   is lifted onto both universes the paper bridges:

   - the replicated consensus log ([Obj.Replicated] over [Rsm]): five
     replicas totally order enqueues/dequeues through Ben-Or consensus,
     survive a crash, and the recorded concurrent history is certified
     linearizable by the generic Wing–Gong checker;
   - the shared-memory lock-free log ([Obj.Smem], Herlihy's
     construction over registers and consensus cells): two processes
     race appends under random interleavings, honest and with consensus
     replaced by a last-write-wins register write — the same checker
     certifies the former and convicts the latter.

     dune exec examples/universal_queue.exe *)

module Q = Obj.Queue
module Smq = Obj.Smem.Make (Obj.Queue)

let () =
  Format.printf "— replicated: queue over the consensus log (n=5, 1 crash)@.";
  let s =
    Workload.Obj_load.run ~n:5 ~clients:3 ~commands:6 ~crashes:1 ~seed:7
      ~quiet:true ~backend:Rsm.Backend.ben_or ~object_name:"queue" ()
  in
  Format.printf
    "  %d/%d acked over %d slots, %d Wing–Gong states searched: %s@.@."
    s.Workload.Obj_load.acked s.Workload.Obj_load.commands
    s.Workload.Obj_load.slots s.Workload.Obj_load.wg_states
    (if s.Workload.Obj_load.ok then "linearizable" else "VIOLATIONS");

  Format.printf "— shared memory: Herlihy's lock-free log (n=2, sampled)@.";
  let ops = [| [ Q.Enq "a"; Q.Deq ]; [ Q.Enq "b"; Q.Deq ] |] in
  let honest = Smq.check_sampled ~ops ~samples:50 ~seed:9L () in
  Format.printf "  honest:  %d interleavings, %d violations@." honest.Smq.samples
    (List.length honest.Smq.violations);
  let broken = Smq.check_sampled ~broken:true ~ops ~samples:50 ~seed:9L () in
  Format.printf "  broken:  %d interleavings, e.g. %s@.@." broken.Smq.samples
    (match broken.Smq.violations with v :: _ -> v | [] -> "(not caught)");

  let ok =
    s.Workload.Obj_load.ok && honest.Smq.violations = []
    && broken.Smq.violations <> []
  in
  Format.printf
    (if ok then
       "one sequential spec, two universes, one checker: certified@."
     else "unexpected verdicts@.");
  if not ok then exit 1
