module Types = Consensus.Types
module Sync_net = Netsim.Sync_net

let queen_of_round ~n ~round = (round - 1) mod n

let make_ctx ~net ~me ~faults =
  let n = Sync_net.n net in
  if me < 0 || me >= n then invalid_arg "Queen.make_ctx: bad processor id";
  if 4 * faults >= n then invalid_arg "Queen.make_ctx: requires 4t < n";
  { Protocol.net; me; faults }

let count_value received k =
  Array.fold_left
    (fun acc msg -> match msg with Some v when v = k -> acc + 1 | Some _ | None -> acc)
    0 received

(* One exchange: w is the strict-majority vote (own value if none); commit
   needs support past n/2 + t so that every correct processor saw the same
   majority (Byzantine slots shift counts by at most t). *)
let ac_invoke (ctx : Protocol.ctx) ~round:_ v =
  let n = Sync_net.n ctx.Protocol.net in
  let t = ctx.Protocol.faults in
  let received = Sync_net.exchange ctx.Protocol.net ~me:ctx.Protocol.me v in
  let c0 = count_value received 0 and c1 = count_value received 1 in
  let w = if 2 * c0 > n then 0 else if 2 * c1 > n then 1 else v in
  let support = if w = 0 then c0 else c1 in
  if 2 * support > n + (2 * t) then Types.AC_commit w else Types.AC_adopt w

let conciliator_invoke (ctx : Protocol.ctx) ~round result =
  let n = Sync_net.n ctx.Protocol.net in
  let v = Types.ac_value result in
  let queen = queen_of_round ~n ~round in
  let received = Sync_net.exchange ctx.Protocol.net ~me:ctx.Protocol.me (min 1 v) in
  match received.(queen) with
  | Some queen_value -> min 1 queen_value
  | None -> min 1 v

module Ac = struct
  type ctx = Protocol.ctx

  module Value = Consensus.Objects.Int_value

  let invoke = ac_invoke
end

module Conciliator = struct
  type ctx = Protocol.ctx

  module Value = Consensus.Objects.Int_value

  let invoke = conciliator_invoke
end

module Consensus_decomposed = struct
  module T = Consensus.Template.Make_ac (Ac) (Conciliator)

  let run ?observer (ctx : Protocol.ctx) init =
    T.consensus_participating ~rounds:(ctx.Protocol.faults + 1) ?observer ctx init
end

let monolithic_run ?observer (ctx : Protocol.ctx) init =
  let observer =
    match observer with Some o -> o | None -> Consensus.Template.null_observer
  in
  let n = Sync_net.n ctx.Protocol.net in
  let t = ctx.Protocol.faults in
  let v = ref init in
  let first_commit = ref None in
  for m = 1 to t + 1 do
    let received = Sync_net.exchange ctx.Protocol.net ~me:ctx.Protocol.me !v in
    let c0 = count_value received 0 and c1 = count_value received 1 in
    let w = if 2 * c0 > n then 0 else if 2 * c1 > n then 1 else !v in
    let support = if w = 0 then c0 else c1 in
    let strong = 2 * support > n + (2 * t) in
    v := w;
    observer.on_detect ~round:m (if strong then Types.Commit w else Types.Adopt w);
    if strong && !first_commit = None then begin
      observer.on_decide ~round:m w;
      first_commit := Some (w, m)
    end;
    let queen = queen_of_round ~n ~round:m in
    let received = Sync_net.exchange ctx.Protocol.net ~me:ctx.Protocol.me (min 1 !v) in
    if not strong then begin
      match received.(queen) with
      | Some queen_value -> v := min 1 queen_value
      | None -> v := min 1 !v
    end;
    observer.on_new_preference ~round:m !v
  done;
  { Consensus.Template.final_preference = !v; first_commit = !first_commit }

let messages_per_template_round ~n ~correct = (correct * n) + n
