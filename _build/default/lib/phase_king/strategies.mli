(** Byzantine strategies specialized against Phase-King.

    Phase-King consumes three lock-step rounds per template round:
    stage 0 = AC exchange 1, stage 1 = AC exchange 2, stage 2 = the king
    broadcast.  These adversaries exploit that structure; the generic
    message-agnostic ones live in {!Netsim.Byzantine}. *)

val stage_of_sync_round : int -> int
(** [sync_round mod 3]. *)

val camp_splitter : int Netsim.Sync_net.strategy
(** Keeps the correct processors split as long as possible: equivocates
    0/1 across the two halves during exchange 1, floods the sentinel [2]
    during exchange 2, and splits again when it happens to be king. *)

val vote_inflater : int -> int Netsim.Sync_net.strategy
(** Pushes the given value everywhere in every stage — the strongest
    honest-looking bias an adversary can apply. *)

val commit_then_steal : int Netsim.Sync_net.strategy
(** The executable counterexample to the "decide at first commit" rule
    (see protocol.mli).  Crafted for [n = 4], [t = 1], Byzantine id 0 and
    correct inputs [p1 = 1, p2 = 1, p3 = 0]:

    - phase 1, exchange 1: report 1 to p1 and p2, 0 to p3 — this makes
      p1/p2 see n-t support for 1 while p3 stays undecided;
    - phase 1, exchange 2: report 1 to p1 only, the sentinel to the others
      — p1 commits 1, p2/p3 merely adopt 1;
    - phase 1, king round (the adversary is king): broadcast 0 — the
      adopters follow the king to 0 while p1 is stuck on its commit;
    - afterwards: behave like an honest processor holding 0.

    Under the final-preference rule everyone decides 0; under the
    first-commit rule p1 decides 1 against p2/p3's 0. *)
