lib/phase_king/runner.mli: Consensus Dsim Netsim
