lib/phase_king/strategies.ml: Array Netsim Printf
