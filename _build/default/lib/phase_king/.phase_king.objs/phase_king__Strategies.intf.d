lib/phase_king/strategies.mli: Netsim
