lib/phase_king/queen.mli: Consensus Netsim Protocol
