lib/phase_king/queen.ml: Array Consensus Netsim Protocol
