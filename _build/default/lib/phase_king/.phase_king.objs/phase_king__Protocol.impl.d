lib/phase_king/protocol.ml: Array Consensus Netsim
