lib/phase_king/protocol.mli: Consensus Netsim
