lib/phase_king/runner.ml: Array Consensus Dsim Fun Hashtbl List Netsim Printf Protocol Queen Strategies
