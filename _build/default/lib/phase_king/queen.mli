(** The Phase-Queen consensus of Berman and Garay, decomposed into the
    same adopt-commit + conciliator shape as Phase-King.

    Queen trades resilience for round complexity: it needs [4t < n]
    (King: [3t < n]) but spends only {e two} lock-step rounds per template
    round (King: three) — one voting exchange and one queen broadcast.

    - {!Ac}: one exchange; [w] is the strict-majority value among the
      received votes (own value when none); commit when [w]'s count
      clears the [n/2 + t] bar, adopt otherwise.
    - {!Conciliator}: the queen of round [m] — processor [(m-1) mod n] —
      broadcasts her value; adopters take it (their own when a Byzantine
      queen stays silent).

    The decision rule is the same faithful one as King: run [t + 1]
    template rounds and decide the final preference. *)

val queen_of_round : n:int -> round:int -> int
(** Same rotation as the king: [(round - 1) mod n]. *)

val make_ctx : net:int Netsim.Sync_net.t -> me:int -> faults:int -> Protocol.ctx
(** Shares {!Protocol.ctx}; checks the stronger [4t < n] bound.
    @raise Invalid_argument when violated. *)

module Ac : Consensus.Objects.AC with type ctx = Protocol.ctx and type Value.t = int

module Conciliator :
  Consensus.Objects.CONCILIATOR with type ctx = Protocol.ctx and type Value.t = int

module Consensus_decomposed : sig
  val run :
    ?observer:int Consensus.Template.observer ->
    Protocol.ctx ->
    int ->
    int Consensus.Template.participating_result
end

val monolithic_run :
  ?observer:int Consensus.Template.observer ->
  Protocol.ctx ->
  int ->
  int Consensus.Template.participating_result
(** The fused two-round-per-phase loop. *)

val messages_per_template_round : n:int -> correct:int -> int
(** One full exchange plus one queen broadcast: [correct*n + n]. *)
