(** The Phase-King Byzantine consensus of Berman, Garay and Perry,
    decomposed per the paper (Section 4.1) into an adopt-commit object and
    a conciliator, plus the original monolithic loop.

    Model: synchronous message passing, [t] Byzantine processors with
    [3t < n].  Values are [0], [1] and the sentinel [2] ("undecided") —
    inputs must be binary, but the adopt-commit object may legitimately
    hand back the sentinel when nothing has enough support, which is why
    the value domain is [int] rather than [bool].

    Round structure: each template round consumes three lock-step network
    rounds — AC exchange 1, AC exchange 2, and the king broadcast inside
    the conciliator.  The king of template round [m] is processor
    [(m - 1) mod n].

    Decision rule: the faithful BGP rule is to run [t + 1] template rounds
    and decide the {e final} preference ({!Consensus.Template.participating_result.final_preference}).
    Deciding at the first commit (the paper's Algorithm-2 rule) is unsafe
    here because the conciliator does not preserve unanimity under a
    Byzantine king; {!Strategies.commit_then_steal} is a concrete adversary
    separating the two rules. *)

type ctx = {
  net : int Netsim.Sync_net.t;
  me : int;
  faults : int;  (** the resilience parameter t, with [3t < n] *)
}

val make_ctx : net:int Netsim.Sync_net.t -> me:int -> faults:int -> ctx
(** @raise Invalid_argument unless [0 <= me < n] and [3 * faults < n]. *)

val king_of_round : n:int -> round:int -> int
(** [(round - 1) mod n] — template rounds are 1-based. *)

(** Paper Algorithm 3. *)
module Ac : Consensus.Objects.AC with type ctx = ctx and type Value.t = int

(** Paper Algorithm 4: the king broadcasts [min 1 v]; everyone returns the
    king's value (falling back to their own when a Byzantine king stays
    silent). *)
module Conciliator :
  Consensus.Objects.CONCILIATOR with type ctx = ctx and type Value.t = int

(** Algorithm 2 instantiated with {!Ac} and {!Conciliator}. *)
module Consensus_decomposed : sig
  val run :
    ?observer:int Consensus.Template.observer ->
    ctx ->
    int ->
    int Consensus.Template.participating_result
  (** Runs exactly [faults + 1] template rounds and reports both the final
      preference (BGP's decision) and the first commit (the paper's). *)
end

val monolithic_run :
  ?observer:int Consensus.Template.observer ->
  ctx ->
  int ->
  int Consensus.Template.participating_result
(** The textbook fused Phase-King loop over the same network, with the
    per-phase outcome reported through the same vocabulary. *)

val messages_per_template_round : n:int -> correct:int -> int
(** Analytic message count of one template round: two full exchanges by
    the correct processors plus one king broadcast ([2*correct*n + n]). *)
