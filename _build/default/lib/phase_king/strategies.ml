module Byz = Netsim.Byzantine

let stage_of_sync_round r = r mod 3

let camp_splitter =
  Byz.custom ~name:"camp-splitter" (fun ~round ~byz:_ ~view ~dst ~rng:_ ->
      let n = Array.length view in
      match stage_of_sync_round round with
      | 0 -> Some (if dst < n / 2 then 0 else 1)
      | 1 -> Some 2
      | _ -> Some (if dst < n / 2 then 1 else 0))

let vote_inflater value =
  Byz.custom
    ~name:(Printf.sprintf "vote-inflater(%d)" value)
    (fun ~round:_ ~byz:_ ~view:_ ~dst:_ ~rng:_ -> Some value)

let commit_then_steal =
  Byz.custom ~name:"commit-then-steal" (fun ~round ~byz:_ ~view:_ ~dst ~rng:_ ->
      match round with
      | 0 -> Some (if dst = 3 then 0 else 1) (* exchange 1, phase 1 *)
      | 1 -> Some (if dst = 1 then 1 else 2) (* exchange 2, phase 1 *)
      | 2 -> Some 0 (* king round, phase 1: we are the king *)
      | _ -> Some 0)
