module Types = Consensus.Types
module Sync_net = Netsim.Sync_net

type ctx = { net : int Sync_net.t; me : int; faults : int }

let make_ctx ~net ~me ~faults =
  let n = Sync_net.n net in
  if me < 0 || me >= n then invalid_arg "Phase_king.make_ctx: bad processor id";
  if 3 * faults >= n then invalid_arg "Phase_king.make_ctx: requires 3t < n";
  { net; me; faults }

let king_of_round ~n ~round = (round - 1) mod n

let count_value received k =
  Array.fold_left
    (fun acc msg -> match msg with Some v when v = k -> acc + 1 | Some _ | None -> acc)
    0 received

(* Paper Algorithm 3: two exchanges with thresholds n-t and t. *)
let ac_invoke ctx ~round:_ v =
  let n = Sync_net.n ctx.net in
  let t = ctx.faults in
  let received1 = Sync_net.exchange ctx.net ~me:ctx.me v in
  let v = ref 2 in
  for k = 0 to 1 do
    if count_value received1 k >= n - t then v := k
  done;
  let received2 = Sync_net.exchange ctx.net ~me:ctx.me !v in
  let d = Array.init 3 (fun k -> count_value received2 k) in
  for k = 2 downto 0 do
    if d.(k) > t then v := k
  done;
  if !v <> 2 && d.(!v) >= n - t then Types.AC_commit !v else Types.AC_adopt !v

(* Paper Algorithm 4: one king-broadcast round.  Our lock-step barrier
   needs every correct processor to submit each round, so non-kings submit
   too and receivers only read the king's slot; message accounting treats
   the round as a single broadcast (see [messages_per_template_round]). *)
let conciliator_invoke ctx ~round result =
  let n = Sync_net.n ctx.net in
  let v = Types.ac_value result in
  let king = king_of_round ~n ~round in
  let received = Sync_net.exchange ctx.net ~me:ctx.me (min 1 v) in
  match received.(king) with
  | Some king_value -> min 1 king_value
  | None ->
      (* A silent Byzantine king: keep the current preference (clamped, so
         the sentinel never becomes a round input). *)
      min 1 v

module Ac = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Int_value

  let invoke = ac_invoke
end

module Conciliator = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Int_value

  let invoke = conciliator_invoke
end

module Consensus_decomposed = struct
  module T = Consensus.Template.Make_ac (Ac) (Conciliator)

  let run ?observer ctx init =
    T.consensus_participating ~rounds:(ctx.faults + 1) ?observer ctx init
end

(* The textbook fused loop: t+1 phases of [exchange; threshold; exchange;
   threshold; king], written independently of the object layer. *)
let monolithic_run ?observer ctx init =
  let observer =
    match observer with Some o -> o | None -> Consensus.Template.null_observer
  in
  let n = Sync_net.n ctx.net in
  let t = ctx.faults in
  let v = ref init in
  let first_commit = ref None in
  for m = 1 to t + 1 do
    let received1 = Sync_net.exchange ctx.net ~me:ctx.me !v in
    v := 2;
    for k = 0 to 1 do
      if count_value received1 k >= n - t then v := k
    done;
    let received2 = Sync_net.exchange ctx.net ~me:ctx.me !v in
    let d = Array.init 3 (fun k -> count_value received2 k) in
    for k = 2 downto 0 do
      if d.(k) > t then v := k
    done;
    let strong = !v <> 2 && d.(!v) >= n - t in
    observer.on_detect ~round:m
      (if strong then Types.Commit !v else Types.Adopt !v);
    if strong && !first_commit = None then begin
      observer.on_decide ~round:m !v;
      first_commit := Some (!v, m)
    end;
    (* King broadcast: processors without strong support take the king's
       value. *)
    let king = king_of_round ~n ~round:m in
    let received = Sync_net.exchange ctx.net ~me:ctx.me (min 1 !v) in
    if not strong then begin
      match received.(king) with
      | Some king_value -> v := min 1 king_value
      | None -> v := min 1 !v
    end;
    observer.on_new_preference ~round:m !v
  done;
  { Consensus.Template.final_preference = !v; first_commit = !first_commit }

let messages_per_template_round ~n ~correct = (2 * correct * n) + n
