exception No_decision of int

type 'v observer = {
  on_detect : round:int -> 'v Types.vac_result -> unit;
  on_new_preference : round:int -> 'v -> unit;
  on_decide : round:int -> 'v -> unit;
}

let null_observer =
  {
    on_detect = (fun ~round:_ _ -> ());
    on_new_preference = (fun ~round:_ _ -> ());
    on_decide = (fun ~round:_ _ -> ());
  }

type 'v participating_result = {
  final_preference : 'v;
  first_commit : ('v * int) option;
}

module Make_vac
    (V : Objects.VAC)
    (R : Objects.RECONCILIATOR
           with type ctx = V.ctx
            and type Value.t = V.Value.t) =
struct
  let consensus ?(max_rounds = 10_000) ?(observer = null_observer) ctx init =
    let rec go m v =
      if m > max_rounds then raise (No_decision max_rounds);
      let result = V.invoke ctx ~round:m v in
      observer.on_detect ~round:m result;
      match result with
      | Types.Commit sigma ->
          observer.on_decide ~round:m sigma;
          (sigma, m)
      | Types.Adopt sigma ->
          observer.on_new_preference ~round:m sigma;
          go (m + 1) sigma
      | Types.Vacillate _ ->
          let v' = R.invoke ctx ~round:m result in
          observer.on_new_preference ~round:m v';
          go (m + 1) v'
    in
    go 1 init

  let consensus_participating ~rounds ?(observer = null_observer) ctx init =
    let decision = ref None in
    let v = ref init in
    for m = 1 to rounds do
      let result = V.invoke ctx ~round:m !v in
      observer.on_detect ~round:m result;
      (match result with
      | Types.Commit sigma ->
          if !decision = None then begin
            observer.on_decide ~round:m sigma;
            decision := Some (sigma, m)
          end;
          v := sigma
      | Types.Adopt sigma -> v := sigma
      | Types.Vacillate _ -> v := R.invoke ctx ~round:m result);
      observer.on_new_preference ~round:m !v
    done;
    { final_preference = !v; first_commit = !decision }
end

module Make_ac
    (A : Objects.AC)
    (C : Objects.CONCILIATOR
           with type ctx = A.ctx
            and type Value.t = A.Value.t) =
struct
  let consensus ?(max_rounds = 10_000) ?(observer = null_observer) ctx init =
    let rec go m v =
      if m > max_rounds then raise (No_decision max_rounds);
      let result = A.invoke ctx ~round:m v in
      observer.on_detect ~round:m (Types.vac_of_ac result);
      match result with
      | Types.AC_commit sigma ->
          observer.on_decide ~round:m sigma;
          (sigma, m)
      | Types.AC_adopt _ ->
          let v' = C.invoke ctx ~round:m result in
          observer.on_new_preference ~round:m v';
          go (m + 1) v'
    in
    go 1 init

  let consensus_participating ~rounds ?(observer = null_observer) ctx init =
    let decision = ref None in
    let v = ref init in
    for m = 1 to rounds do
      let result = A.invoke ctx ~round:m !v in
      observer.on_detect ~round:m (Types.vac_of_ac result);
      (match result with
      | Types.AC_commit sigma ->
          if !decision = None then begin
            observer.on_decide ~round:m sigma;
            decision := Some (sigma, m)
          end;
          (* Keep participating: join the conciliator exchange but ignore
             its suggestion once decided. *)
          let _suggestion = C.invoke ctx ~round:m result in
          v := sigma
      | Types.AC_adopt _ -> v := C.invoke ctx ~round:m result);
      observer.on_new_preference ~round:m !v
    done;
    { final_preference = !v; first_commit = !decision }
end
