(** Executable property monitors for the paper's object guarantees.

    The paper proves lemmas of the form "Algorithm X is a correct VAC
    implementation".  Here each guarantee is a predicate over a recorded
    execution: plug a monitor's {!Make.observer} into a template run (or
    record observations by hand), then ask for violations.  An empty
    violation list over many adversarial runs is the experimental analogue
    of the lemma.

    Checked properties, per round [m] with outputs {(p, (X_p, u_p))}:

    - {b VAC coherence over adopt & commit}: if some processor got
      [(commit, u)], every processor got [(commit, u)] or [(adopt, u)].
    - {b VAC coherence over vacillate & adopt}: if nobody committed and
      someone got [(adopt, u)], every processor got [(adopt, u)] or
      [(vacillate, _)].
    - {b AC coherence}: if some processor got [(commit, u)], every
      processor's value is [u] (no vacillate outputs may exist at all).
    - {b Convergence}: if all of round [m]'s inputs equal [v], every output
      is [(commit, v)].
    - {b Validity}: every output value was some processor's input to that
      round.
    - {b Consensus agreement}: all decisions across the run are equal.
    - {b Consensus validity}: every decision was some processor's initial
      input. *)

type violation = { round : int option; property : string; message : string }

val pp_violation : Format.formatter -> violation -> unit

module Make (V : Objects.VALUE) : sig
  type t

  val create : unit -> t

  val observer : t -> pid:int -> V.t Template.observer
  (** Hook for {!Template}: records detector outputs, new preferences and
      decisions for the given processor. *)

  val record_initial : t -> pid:int -> V.t -> unit
  (** Declare a processor's initial input (feeds round 1's input set and
      the consensus-validity check). *)

  val record_output : t -> round:int -> pid:int -> V.t Types.vac_result -> unit
  (** Manual recording, for code that does not go through a template.
      AC outputs are recorded via {!Types.vac_of_ac}. *)

  val record_decision : t -> round:int -> pid:int -> V.t -> unit

  val rounds : t -> int list
  (** Rounds with at least one recorded output, ascending. *)

  val outputs : t -> round:int -> (int * V.t Types.vac_result) list
  val decisions : t -> (int * int * V.t) list
  (** [(pid, round, value)] per decision, in recording order. *)

  val check_vac : ?validity:bool -> t -> violation list
  (** All VAC guarantees over all recorded rounds.  [validity] (default
      true) additionally checks per-round validity — turn it off for
      objects fed by coin flips. *)

  val check_ac : ?validity:bool -> t -> violation list
  (** All AC guarantees (vacillate outputs are themselves violations). *)

  val check_consensus : t -> violation list
  (** Agreement + validity over recorded decisions. *)
end
