type 'v ac_result = AC_adopt of 'v | AC_commit of 'v
type 'v vac_result = Vacillate of 'v | Adopt of 'v | Commit of 'v

let ac_value = function AC_adopt v | AC_commit v -> v
let vac_value = function Vacillate v | Adopt v | Commit v -> v
let ac_confidence = function AC_adopt _ -> "adopt" | AC_commit _ -> "commit"

let vac_confidence = function
  | Vacillate _ -> "vacillate"
  | Adopt _ -> "adopt"
  | Commit _ -> "commit"

let vac_of_ac = function AC_adopt v -> Adopt v | AC_commit v -> Commit v

let equal_ac eq a b =
  match (a, b) with
  | AC_adopt x, AC_adopt y | AC_commit x, AC_commit y -> eq x y
  | AC_adopt _, AC_commit _ | AC_commit _, AC_adopt _ -> false

let equal_vac eq a b =
  match (a, b) with
  | Vacillate x, Vacillate y | Adopt x, Adopt y | Commit x, Commit y -> eq x y
  | Vacillate _, (Adopt _ | Commit _)
  | Adopt _, (Vacillate _ | Commit _)
  | Commit _, (Vacillate _ | Adopt _) ->
      false

let pp_ac pp_v ppf = function
  | AC_adopt v -> Format.fprintf ppf "(adopt, %a)" pp_v v
  | AC_commit v -> Format.fprintf ppf "(commit, %a)" pp_v v

let pp_vac pp_v ppf = function
  | Vacillate v -> Format.fprintf ppf "(vacillate, %a)" pp_v v
  | Adopt v -> Format.fprintf ppf "(adopt, %a)" pp_v v
  | Commit v -> Format.fprintf ppf "(commit, %a)" pp_v v
