(** Result types for the consensus building blocks of the paper.

    An {e adopt-commit} object (Gafni) returns a value with one of two
    confidence levels; the paper's {e vacillate-adopt-commit} adds a third,
    weakest level.  The constructors mirror the paper's notation
    [(confidence, u)]. *)

(** Output of an adopt-commit object. *)
type 'v ac_result =
  | AC_adopt of 'v
      (** some processor may have committed to this value — carry it *)
  | AC_commit of 'v  (** safe to decide this value *)

(** Output of a vacillate-adopt-commit object. *)
type 'v vac_result =
  | Vacillate of 'v
      (** no information: the system is undecided; the value is only a
          preference (subject to validity) *)
  | Adopt of 'v
      (** some processors may have agreed on this value; all non-vacillating
          processors saw the same value *)
  | Commit of 'v  (** agreement reached on this value: decide *)

val ac_value : 'v ac_result -> 'v
(** The value component, ignoring confidence. *)

val vac_value : 'v vac_result -> 'v
(** The value component, ignoring confidence. *)

val ac_confidence : _ ac_result -> string
(** ["adopt"] or ["commit"]. *)

val vac_confidence : _ vac_result -> string
(** ["vacillate"], ["adopt"] or ["commit"]. *)

val vac_of_ac : 'v ac_result -> 'v vac_result
(** Forget nothing: embeds AC output into VAC output (adopt ↦ adopt,
    commit ↦ commit). *)

val equal_ac : ('v -> 'v -> bool) -> 'v ac_result -> 'v ac_result -> bool
val equal_vac : ('v -> 'v -> bool) -> 'v vac_result -> 'v vac_result -> bool

val pp_ac :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v ac_result -> unit

val pp_vac :
  (Format.formatter -> 'v -> unit) -> Format.formatter -> 'v vac_result -> unit
