(** The paper's generic consensus templates (Algorithms 1 and 2).

    Both templates run in rounds.  Round [m] first invokes the agreement
    detector with the current preference; depending on the confidence level
    the processor either decides ([commit]), carries the detected value
    ([adopt]), or asks the progress object for a fresh preference
    ([vacillate], or [adopt] in the AC template).

    Two driving modes are provided:

    - [consensus]: the paper's Algorithm 1/2 — halt at the first commit.
    - [consensus_participating]: run a {e fixed} number of rounds and keep
      participating after deciding, as the paper's Phase-King section
      requires ("every algorithm continues to participate in the overall
      consensus template even after deciding"); lock-step substrates need
      every correct processor in every round. *)

exception No_decision of int
(** Raised by [consensus] when [max_rounds] elapse without a commit. *)

(** Observation hooks, consumed by monitors and tests.  All default to
    no-ops. *)
type 'v observer = {
  on_detect : round:int -> 'v Types.vac_result -> unit;
      (** detector output (AC outputs are embedded via {!Types.vac_of_ac}) *)
  on_new_preference : round:int -> 'v -> unit;
      (** preference entering the next round *)
  on_decide : round:int -> 'v -> unit;  (** first decision *)
}

val null_observer : 'v observer

(** Outcome of a fixed-length participating run. *)
type 'v participating_result = {
  final_preference : 'v;
      (** the preference held after the last round — what the original
          Phase-King decides *)
  first_commit : ('v * int) option;
      (** the first commit observed and its round, if any — what the
          paper's template decides.  For the AC template with a
          non-validity-preserving conciliator (Phase-King under a Byzantine
          king) these two rules can disagree; see EXPERIMENTS.md E3. *)
}

(** Algorithm 1: vacillate-adopt-commit + reconciliator. *)
module Make_vac
    (V : Objects.VAC)
    (R : Objects.RECONCILIATOR
           with type ctx = V.ctx
            and type Value.t = V.Value.t) : sig
  val consensus :
    ?max_rounds:int ->
    ?observer:V.Value.t observer ->
    V.ctx ->
    V.Value.t ->
    V.Value.t * int
  (** [consensus ctx v] runs the template until commit; returns the decided
      value and the deciding round (1-based).  [max_rounds] (default
      10_000) bounds runaway executions. *)

  val consensus_participating :
    rounds:int ->
    ?observer:V.Value.t observer ->
    V.ctx ->
    V.Value.t ->
    V.Value.t participating_result
  (** Run exactly [rounds] rounds, participating throughout. *)
end

(** Algorithm 2: adopt-commit + conciliator (Aspnes' framework). *)
module Make_ac
    (A : Objects.AC)
    (C : Objects.CONCILIATOR
           with type ctx = A.ctx
            and type Value.t = A.Value.t) : sig
  val consensus :
    ?max_rounds:int ->
    ?observer:A.Value.t observer ->
    A.ctx ->
    A.Value.t ->
    A.Value.t * int

  val consensus_participating :
    rounds:int ->
    ?observer:A.Value.t observer ->
    A.ctx ->
    A.Value.t ->
    A.Value.t participating_result
  (** As above.  In participating mode the conciliator is invoked in
      {e every} round — a lock-step conciliator (Phase-King's king
      broadcast) involves all correct processors whether or not their AC
      confidence was commit; a processor that has seen a commit keeps its
      committed preference and ignores the conciliator's suggestion. *)
end
