(** Object-to-object constructions (paper Section 5).

    The paper states that vacillate-adopt-commit can be implemented from
    two adopt-commit objects (making AC "slightly weaker" than VAC); this
    module gives the construction, generically over the substrate:

    {v
      VAC(v, m):               AC_a      AC_b      output
        (c1, u) = AC_a(v, m)   commit    commit    (commit,    w)
        (c2, w) = AC_b(u, m)   adopt     commit    (adopt,     w)
                               commit    adopt     (adopt,     w)
                               adopt     adopt     (vacillate, w)
    v}

    Correctness sketch — every output value is AC_b's value [w]:
    - {e coherence over adopt & commit}: a commit means AC_a committed [u],
      so by AC_a's coherence everyone fed [u] to AC_b, whose convergence
      makes everyone commit [u] in AC_b — nobody can vacillate, and all
      values are [u].
    - {e coherence over vacillate & adopt}: adopt-receivers either saw
      AC_b commit (AC_b's coherence pins one value) or saw AC_a commit
      with AC_b adopt (AC_a's coherence pins everyone's AC_b {e input},
      and AC_b validity pins its outputs).
    - {e convergence} and {e validity} compose directly.

    The two AC objects must be {e distinct instances} (they may share a
    round counter but not internal state). *)

module Vac_of_two_ac
    (A : Objects.AC)
    (B : Objects.AC with type ctx = A.ctx and type Value.t = A.Value.t) :
  Objects.VAC with type ctx = A.ctx and type Value.t = A.Value.t

(** The converse direction is trivial — demoting vacillate to adopt turns
    any VAC into a correct AC (which is why AC is the {e weaker} object):

    - AC coherence: a commit on [u] means, by VAC coherence over adopt &
      commit, every output value is [u] — demotion does not change values.
    - Convergence and validity carry over unchanged.

    Together with {!Vac_of_two_ac} this pins the paper's Section-5
    hierarchy: one VAC ⇒ one AC, two ACs ⇒ one VAC. *)
module Ac_of_vac (V : Objects.VAC) :
  Objects.AC with type ctx = V.ctx and type Value.t = V.Value.t
