(** Module-type signatures for the paper's four consensus building blocks.

    Each object is invoked once per template round by every participating
    processor.  The [ctx] type carries whatever a concrete implementation
    needs to talk to its substrate — a synchronous network handle for
    Phase-King, an asynchronous one for Ben-Or, a Raft replica for Raft, a
    register file for shared memory.  Invocations happen inside a
    {!Dsim.Engine} process, so implementations may freely suspend.

    The guarantees each signature must provide (paper Section 2):

    - {b adopt-commit}: validity, termination, coherence (a commit forces
      everyone's value), convergence (unanimous input commits).
    - {b vacillate-adopt-commit}: validity, termination, convergence,
      coherence over adopt & commit, coherence over vacillate & adopt.
    - {b conciliator}: validity, termination, probabilistic agreement
      (all outputs equal with probability bounded away from 0).
    - {b reconciliator}: termination; weak agreement — with probability 1
      some round eventually produces inputs on which the detector commits;
      the returned value must respect the current round's adopt values when
      any exist (footnote 1: otherwise any valid input). *)

(** Values a consensus decides on. *)
module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Gafni's adopt-commit object. *)
module type AC = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t -> Value.t Types.ac_result
end

(** Aspnes' conciliator object.  Receives the AC output of the round it
    follows (the paper's [Conciliator(X, σ, m)]). *)
module type CONCILIATOR = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t Types.ac_result -> Value.t
end

(** The paper's vacillate-adopt-commit object. *)
module type VAC = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t -> Value.t Types.vac_result
end

(** The paper's reconciliator object.  Receives the VAC output of the round
    it follows (the paper's [Reconciliator(X, σ, m)]). *)
module type RECONCILIATOR = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t Types.vac_result -> Value.t
end

(** A whole consensus protocol (what the templates produce). *)
module type CONSENSUS = sig
  type ctx

  module Value : VALUE

  val consensus : ctx -> Value.t -> Value.t
  (** Blocks until this processor decides; returns the decision. *)
end

(** The binary value domain used by Phase-King and Ben-Or. *)
module Bool_value : VALUE with type t = bool

(** Integer values, for multivalued consensus (Raft, examples). *)
module Int_value : VALUE with type t = int

(** String values (Raft commands in the key-value example). *)
module String_value : VALUE with type t = string
