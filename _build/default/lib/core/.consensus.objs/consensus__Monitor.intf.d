lib/core/monitor.mli: Format Objects Template Types
