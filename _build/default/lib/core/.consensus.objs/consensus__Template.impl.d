lib/core/template.ml: Objects Types
