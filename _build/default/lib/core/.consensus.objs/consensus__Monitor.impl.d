lib/core/monitor.ml: Format Hashtbl Int List Map Objects Template Types
