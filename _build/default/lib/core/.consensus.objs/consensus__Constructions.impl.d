lib/core/constructions.ml: Objects Types
