lib/core/template.mli: Objects Types
