lib/core/constructions.mli: Objects
