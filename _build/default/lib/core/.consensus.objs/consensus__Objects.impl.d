lib/core/objects.ml: Bool Format Int String Types
