lib/core/objects.mli: Format Types
