module Vac_of_two_ac
    (A : Objects.AC)
    (B : Objects.AC with type ctx = A.ctx and type Value.t = A.Value.t) =
struct
  type ctx = A.ctx

  module Value = A.Value

  let invoke ctx ~round v =
    match A.invoke ctx ~round v with
    | Types.AC_commit u -> (
        match B.invoke ctx ~round u with
        | Types.AC_commit w -> Types.Commit w
        | Types.AC_adopt w -> Types.Adopt w)
    | Types.AC_adopt u -> (
        match B.invoke ctx ~round u with
        | Types.AC_commit w -> Types.Adopt w
        | Types.AC_adopt w -> Types.Vacillate w)
end

module Ac_of_vac (V : Objects.VAC) = struct
  type ctx = V.ctx

  module Value = V.Value

  let invoke ctx ~round v =
    match V.invoke ctx ~round v with
    | Types.Commit u -> Types.AC_commit u
    | Types.Adopt u | Types.Vacillate u -> Types.AC_adopt u
end
