module type VALUE = sig
  type t

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

module type AC = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t -> Value.t Types.ac_result
end

module type CONCILIATOR = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t Types.ac_result -> Value.t
end

module type VAC = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t -> Value.t Types.vac_result
end

module type RECONCILIATOR = sig
  type ctx

  module Value : VALUE

  val invoke : ctx -> round:int -> Value.t Types.vac_result -> Value.t
end

module type CONSENSUS = sig
  type ctx

  module Value : VALUE

  val consensus : ctx -> Value.t -> Value.t
end

module Bool_value = struct
  type t = bool

  let equal = Bool.equal
  let pp = Format.pp_print_bool
end

module Int_value = struct
  type t = int

  let equal = Int.equal
  let pp = Format.pp_print_int
end

module String_value = struct
  type t = string

  let equal = String.equal
  let pp = Format.pp_print_string
end
