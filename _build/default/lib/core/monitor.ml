type violation = { round : int option; property : string; message : string }

let pp_violation ppf v =
  match v.round with
  | Some r -> Format.fprintf ppf "[round %d] %s: %s" r v.property v.message
  | None -> Format.fprintf ppf "%s: %s" v.property v.message

module Make (V : Objects.VALUE) = struct
  module Int_map = Map.Make (Int)

  type round_data = {
    mutable inputs : V.t Int_map.t;  (* pid -> preference entering the round *)
    mutable outs : V.t Types.vac_result Int_map.t;  (* pid -> detector output *)
  }

  type t = {
    mutable initials : V.t Int_map.t;
    rounds_tbl : (int, round_data) Hashtbl.t;
    mutable decisions_rev : (int * int * V.t) list;
  }

  let create () =
    { initials = Int_map.empty; rounds_tbl = Hashtbl.create 16; decisions_rev = [] }

  let round_data t round =
    match Hashtbl.find_opt t.rounds_tbl round with
    | Some rd -> rd
    | None ->
        let rd = { inputs = Int_map.empty; outs = Int_map.empty } in
        Hashtbl.replace t.rounds_tbl round rd;
        rd

  let record_initial t ~pid v =
    t.initials <- Int_map.add pid v t.initials;
    let rd = round_data t 1 in
    rd.inputs <- Int_map.add pid v rd.inputs

  let record_output t ~round ~pid out =
    let rd = round_data t round in
    rd.outs <- Int_map.add pid out rd.outs

  let record_decision t ~round ~pid v =
    t.decisions_rev <- (pid, round, v) :: t.decisions_rev

  let record_preference t ~round ~pid v =
    (* The preference leaving round [round] is the input to round+1. *)
    let rd = round_data t (round + 1) in
    rd.inputs <- Int_map.add pid v rd.inputs

  let observer t ~pid =
    {
      Template.on_detect = (fun ~round out -> record_output t ~round ~pid out);
      on_new_preference = (fun ~round v -> record_preference t ~round ~pid v);
      on_decide = (fun ~round v -> record_decision t ~round ~pid v);
    }

  let rounds t =
    Hashtbl.fold (fun r rd acc -> if Int_map.is_empty rd.outs then acc else r :: acc)
      t.rounds_tbl []
    |> List.sort compare

  let outputs t ~round =
    match Hashtbl.find_opt t.rounds_tbl round with
    | None -> []
    | Some rd -> Int_map.bindings rd.outs

  let decisions t = List.rev t.decisions_rev

  let str_of pp v = Format.asprintf "%a" pp v
  let str_v v = str_of V.pp v
  let str_out out = str_of (Types.pp_vac V.pp) out

  let violation ?round property fmt =
    Format.kasprintf (fun message -> { round; property; message }) fmt

  (* --- per-round checks -------------------------------------------------- *)

  let check_coherence_ac ~round outs acc =
    (* If anyone committed u: everyone committed or adopted u. *)
    let commit =
      Int_map.fold
        (fun pid out found ->
          match (out, found) with
          | Types.Commit u, None -> Some (pid, u)
          | (Types.Commit _ | Types.Adopt _ | Types.Vacillate _), found -> found)
        outs None
    in
    match commit with
    | None -> acc
    | Some (cp, u) ->
        Int_map.fold
          (fun pid out acc ->
            match out with
            | Types.Commit w | Types.Adopt w ->
                if V.equal u w then acc
                else
                  violation ~round "coherence(adopt&commit)"
                    "p%d committed %s but p%d has value %s" cp (str_v u) pid
                    (str_v w)
                  :: acc
            | Types.Vacillate _ ->
                violation ~round "coherence(adopt&commit)"
                  "p%d committed %s but p%d vacillates (%s)" cp (str_v u) pid
                  (str_out out)
                :: acc)
          outs acc

  let check_coherence_va ~round outs acc =
    (* If nobody committed and someone adopted u: all adopts carry u. *)
    let any_commit =
      Int_map.exists
        (fun _ out ->
          match out with
          | Types.Commit _ -> true
          | Types.Adopt _ | Types.Vacillate _ -> false)
        outs
    in
    if any_commit then acc
    else
      let adopts =
        Int_map.fold
          (fun pid out l ->
            match out with
            | Types.Adopt u -> (pid, u) :: l
            | Types.Commit _ | Types.Vacillate _ -> l)
          outs []
      in
      match adopts with
      | [] | [ _ ] -> acc
      | (p0, u0) :: rest ->
          List.fold_left
            (fun acc (pid, u) ->
              if V.equal u u0 then acc
              else
                violation ~round "coherence(vacillate&adopt)"
                  "p%d adopted %s but p%d adopted %s" p0 (str_v u0) pid (str_v u)
                :: acc)
            acc rest

  let check_convergence ~round inputs outs acc =
    (* Unanimous inputs must yield unanimous commits on that value. *)
    match Int_map.choose_opt inputs with
    | None -> acc
    | Some (_, v0) ->
        let unanimous = Int_map.for_all (fun _ v -> V.equal v v0) inputs in
        (* Only meaningful when every processor that produced an output also
           has a recorded input. *)
        let covered = Int_map.for_all (fun pid _ -> Int_map.mem pid inputs) outs in
        if not (unanimous && covered) then acc
        else
          Int_map.fold
            (fun pid out acc ->
              match out with
              | Types.Commit w when V.equal w v0 -> acc
              | Types.Commit _ | Types.Adopt _ | Types.Vacillate _ ->
                  violation ~round "convergence"
                    "all inputs were %s but p%d got %s" (str_v v0) pid
                    (str_out out)
                  :: acc)
            outs acc

  let check_validity ~round inputs outs acc =
    match Int_map.choose_opt inputs with
    | None -> acc  (* inputs unknown: nothing to check *)
    | Some _ ->
        Int_map.fold
          (fun pid out acc ->
            let u = Types.vac_value out in
            if Int_map.exists (fun _ v -> V.equal v u) inputs then acc
            else
              violation ~round "validity" "p%d's output value %s was nobody's input"
                pid (str_v u)
              :: acc)
          outs acc

  let check_no_vacillate ~round outs acc =
    Int_map.fold
      (fun pid out acc ->
        match out with
        | Types.Vacillate _ ->
            violation ~round "ac-shape" "p%d got a vacillate from an AC object" pid
            :: acc
        | Types.Adopt _ | Types.Commit _ -> acc)
      outs acc

  let fold_rounds t f =
    List.fold_left
      (fun acc r ->
        let rd = Hashtbl.find t.rounds_tbl r in
        f ~round:r rd acc)
      [] (rounds t)

  let check_vac ?(validity = true) t =
    fold_rounds t (fun ~round rd acc ->
        let acc = check_coherence_ac ~round rd.outs acc in
        let acc = check_coherence_va ~round rd.outs acc in
        let acc = check_convergence ~round rd.inputs rd.outs acc in
        if validity then check_validity ~round rd.inputs rd.outs acc else acc)
    |> List.rev

  let check_ac ?(validity = true) t =
    fold_rounds t (fun ~round rd acc ->
        let acc = check_no_vacillate ~round rd.outs acc in
        let acc = check_coherence_ac ~round rd.outs acc in
        let acc = check_convergence ~round rd.inputs rd.outs acc in
        if validity then check_validity ~round rd.inputs rd.outs acc else acc)
    |> List.rev

  let check_consensus t =
    let ds = decisions t in
    let acc =
      match ds with
      | [] -> []
      | (p0, _, v0) :: rest ->
          List.fold_left
            (fun acc (pid, _, v) ->
              if V.equal v v0 then acc
              else
                violation "agreement" "p%d decided %s but p%d decided %s" p0
                  (str_v v0) pid (str_v v)
                :: acc)
            [] rest
    in
    let acc =
      List.fold_left
        (fun acc (pid, _, v) ->
          if Int_map.is_empty t.initials then acc
          else if Int_map.exists (fun _ i -> V.equal i v) t.initials then acc
          else
            violation "consensus-validity"
              "p%d decided %s, which was nobody's initial value" pid (str_v v)
            :: acc)
        acc ds
    in
    List.rev acc
end
