(** Raft wire protocol and log types (paper Figure 1 / Figure 2).

    Log indices are 1-based, as in the Raft paper; index 0 is the empty
    sentinel with term 0.  Commands are opaque strings so the same replica
    code serves both the single-command consensus reduction (a [D&S(v)]
    payload) and the replicated key-value example. *)

type term = int
type command = string

type entry = { entry_term : term; cmd : command }

type msg =
  | Request_vote of {
      term : term;
      candidate_id : int;
      last_log_index : int;
      last_log_term : term;
    }
  | Request_vote_reply of { term : term; granted : bool }
  | Append_entries of {
      term : term;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : term;
      entries : entry list;
          (** [[]] makes this the paper's "second kind" — a pure
              commit-index / heartbeat message *)
      leader_commit : int;
    }
  | Append_entries_reply of { term : term; success : bool; match_index : int }
      (** [match_index] is meaningful only when [success]: the highest log
          index the follower now knows matches the leader's log *)

val pp_entry : Format.formatter -> entry -> unit
val pp_msg : Format.formatter -> msg -> unit
val msg_kind : msg -> string
(** Short tag for traces: ["rv"], ["rv-ack"], ["ae"], ["ae-commit"],
    ["ae-ack"]. *)
