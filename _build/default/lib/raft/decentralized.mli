(** The decentralized, convergence-restoring Raft variant sketched at the
    end of paper Section 4.3.

    The paper notes that leader-based Raft lacks the VAC convergence
    property, and that decentralizing it — everyone broadcasts the command
    it wants logged, and whoever sees a majority announces commitment —
    yields an algorithm "that highly resembles Ben-Or's", differing only
    in the reconciliator: where Ben-Or flips a coin, the Raft lineage
    breaks stalemates by {e timing} (randomized timers deciding who moves
    first).

    This module implements exactly that reading, multivalued:

    - {!Vac}: broadcast ⟨1, v⟩; on [n-t] proposals, ratify the strict
      majority value if one exists; on [n-t] second-step messages, commit
      past [t] ratifications, adopt one, vacillate on none.
    - {!Reconciliator}: return the {e plurality} value among this round's
      received proposals (earliest sender breaking ties) — a deterministic
      rule whose randomness comes entirely from message timing, the
      network analogue of Raft's randomized election timer.

    Model: asynchronous message passing, [t < n/2] crash failures,
    arbitrary (multivalued) inputs. *)

type ctx = {
  net : Decentralized_msg.t Netsim.Async_net.t;
  me : int;
  faults : int;
  input : int;
  tally : Dec_tally.t;
}

val make_ctx :
  net:Decentralized_msg.t Netsim.Async_net.t -> me:int -> faults:int -> input:int -> ctx
(** Builds the context and installs the node's tally as its delivery
    handler. *)

module Vac : Consensus.Objects.VAC with type ctx = ctx and type Value.t = int

module Reconciliator :
  Consensus.Objects.RECONCILIATOR with type ctx = ctx and type Value.t = int

module Consensus_decentralized : sig
  val consensus :
    ?max_rounds:int ->
    ?observer:int Consensus.Template.observer ->
    ctx ->
    int ->
    int * int
end
