(** Incremental per-phase counters for the decentralized variant
    (multivalued, distinct-sender semantics), installed as the node's
    delivery handler — the same O(1)-read discipline as [Ben_or.Tally]. *)

type t

val attach : Decentralized_msg.t Netsim.Async_net.t -> me:int -> t

val proposers : t -> phase:int -> int
(** Distinct senders of ⟨1, ∗⟩ for the phase. *)

val proposals_in_arrival_order : t -> phase:int -> (int * int) list
(** [(sender, value)] per distinct proposer, earliest first. *)

val majority_value : t -> phase:int -> n:int -> int option
(** The value proposed by a strict majority of all [n], if one exists. *)

val second_senders : t -> phase:int -> int
(** Distinct senders of second-step messages for the phase. *)

val ratifies_for : t -> phase:int -> int -> int
(** Distinct senders ratifying this value. *)

val ratified_values : t -> phase:int -> int list
(** Values with at least one ratification, ascending. *)

val forget_below : t -> phase:int -> unit
