lib/raft/replica.ml: Array Dsim Format Lazy List Netsim Printf Types
