lib/raft/consensus_raft.mli: Cluster Consensus Types
