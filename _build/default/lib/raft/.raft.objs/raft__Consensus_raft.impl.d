lib/raft/consensus_raft.ml: Array Cluster Consensus Hashtbl List Printf Replica String Types
