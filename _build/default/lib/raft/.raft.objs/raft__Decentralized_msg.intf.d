lib/raft/decentralized_msg.mli: Format
