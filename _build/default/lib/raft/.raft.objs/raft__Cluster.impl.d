lib/raft/cluster.ml: Array Dsim Hashtbl List Netsim Option Printf Replica String Types
