lib/raft/decentralized_msg.ml: Format
