lib/raft/cluster.mli: Dsim Netsim Replica Types
