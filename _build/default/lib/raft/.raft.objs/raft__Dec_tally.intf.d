lib/raft/dec_tally.mli: Decentralized_msg Netsim
