lib/raft/decentralized.ml: Consensus Dec_tally Decentralized_msg Dsim Hashtbl List Netsim Option
