lib/raft/dec_tally.ml: Array Decentralized_msg Hashtbl List Netsim Option
