lib/raft/decentralized.mli: Consensus Dec_tally Decentralized_msg Netsim
