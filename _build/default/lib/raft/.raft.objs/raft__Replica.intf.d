lib/raft/replica.mli: Dsim Format Netsim Types
