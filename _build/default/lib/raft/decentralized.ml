module Types_c = Consensus.Types
module Net = Netsim.Async_net
module Msg = Decentralized_msg

type ctx = {
  net : Msg.t Net.t;
  me : int;
  faults : int;
  input : int;
  tally : Dec_tally.t;
}

let make_ctx ~net ~me ~faults ~input =
  let n = Net.n net in
  if me < 0 || me >= n then invalid_arg "Decentralized.make_ctx: bad id";
  if 2 * faults >= n then invalid_arg "Decentralized.make_ctx: requires 2t < n";
  { net; me; faults; input; tally = Dec_tally.attach net ~me }

let vac_invoke ctx ~round:m v =
  let n = Net.n ctx.net in
  let t = ctx.faults in
  Dec_tally.forget_below ctx.tally ~phase:(m - 1);
  Net.broadcast ctx.net ~src:ctx.me (Msg.Propose { phase = m; value = v });
  Dsim.Engine.await_cond (fun () -> Dec_tally.proposers ctx.tally ~phase:m >= n - t);
  Net.broadcast ctx.net ~src:ctx.me
    (Msg.Second { phase = m; ratify = Dec_tally.majority_value ctx.tally ~phase:m ~n });
  Dsim.Engine.await_cond (fun () ->
      Dec_tally.second_senders ctx.tally ~phase:m >= n - t);
  (* At most one value can be ratified in a phase: ratification requires a
     strict majority of distinct proposers behind it. *)
  let ratified = Dec_tally.ratified_values ctx.tally ~phase:m in
  let parting_gift u =
    Net.broadcast ctx.net ~src:ctx.me (Msg.Propose { phase = m + 1; value = u });
    Net.broadcast ctx.net ~src:ctx.me (Msg.Second { phase = m + 1; ratify = Some u })
  in
  match List.find_opt (fun w -> Dec_tally.ratifies_for ctx.tally ~phase:m w > t) ratified with
  | Some w ->
      parting_gift w;
      Types_c.Commit w
  | None -> (
      match ratified with
      | w :: _ -> Types_c.Adopt w
      | [] -> Types_c.Vacillate v)

module Vac = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Int_value

  let invoke = vac_invoke
end

module Reconciliator = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Int_value

  (* Timing-based shake-up: adopt the plurality of the proposals that
     happened to arrive this round, earliest proposer breaking ties.  No
     coin is flipped — all randomness is the network's. *)
  let invoke ctx ~round:m _detected =
    let proposals = Dec_tally.proposals_in_arrival_order ctx.tally ~phase:m in
    match proposals with
    | [] -> ctx.input
    | arrivals ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun (_, v) ->
            Hashtbl.replace counts v
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
          arrivals;
        let best = ref None in
        List.iter
          (fun (_, v) ->
            let c = Option.value ~default:0 (Hashtbl.find_opt counts v) in
            match !best with
            | Some (_, bc) when bc >= c -> ()
            | Some _ | None -> best := Some (v, c))
          arrivals;
        (match !best with Some (v, _) -> v | None -> ctx.input)
end

module Consensus_decentralized = struct
  module T = Consensus.Template.Make_vac (Vac) (Reconciliator)

  let consensus = T.consensus
end
