(** Wire messages of the decentralized (leaderless) variant of paper
    Section 4.3. *)

type t =
  | Propose of { phase : int; value : int }  (** ⟨1, v⟩ *)
  | Second of { phase : int; ratify : int option }
      (** ⟨2, v, ratify⟩ when [Some v]; the non-committal ⟨2, ?⟩ when
          [None] *)

val phase : t -> int
val pp : Format.formatter -> t -> unit
