type term = int
type command = string

type entry = { entry_term : term; cmd : command }

type msg =
  | Request_vote of {
      term : term;
      candidate_id : int;
      last_log_index : int;
      last_log_term : term;
    }
  | Request_vote_reply of { term : term; granted : bool }
  | Append_entries of {
      term : term;
      leader_id : int;
      prev_log_index : int;
      prev_log_term : term;
      entries : entry list;
      leader_commit : int;
    }
  | Append_entries_reply of { term : term; success : bool; match_index : int }

let pp_entry ppf e = Format.fprintf ppf "{t%d %S}" e.entry_term e.cmd

let pp_msg ppf = function
  | Request_vote { term; candidate_id; last_log_index; last_log_term } ->
      Format.fprintf ppf "RequestVote[t%d, c%d, lli%d, llt%d]" term candidate_id
        last_log_index last_log_term
  | Request_vote_reply { term; granted } ->
      Format.fprintf ppf "ack_RequestVote[t%d, %b]" term granted
  | Append_entries { term; leader_id; prev_log_index; prev_log_term; entries; leader_commit }
    ->
      Format.fprintf ppf "AppendEntries[t%d, l%d, pli%d, plt%d, |e|=%d, lc%d]" term
        leader_id prev_log_index prev_log_term (List.length entries) leader_commit
  | Append_entries_reply { term; success; match_index } ->
      Format.fprintf ppf "ack_AppendEntries[t%d, %b, mi%d]" term success match_index

let msg_kind = function
  | Request_vote _ -> "rv"
  | Request_vote_reply _ -> "rv-ack"
  | Append_entries { entries = []; _ } -> "ae-commit"
  | Append_entries _ -> "ae"
  | Append_entries_reply _ -> "ae-ack"
