(** Consensus through Raft with the single [D&S(v)] command
    (paper Section 4.3, Algorithms 7–11).

    Every processor starts with an input value.  Whenever a replica wins an
    election and its log is empty it proposes [D&S(v)] with its own value;
    if its log already holds a command it simply keeps replicating it (the
    paper's [v* ← log\[lastLogIndex*\]]).  A processor {e decides} the value
    of the first log entry it applies; [D&S] semantics make the decision
    permanent.

    {2 The VAC view}

    The paper maps each Raft term to one template round and classifies the
    processors of a term into the three VAC confidences:

    - {e vacillate} — heard from no leader this term;
    - {e adopt} — accepted an AppendEntries of the first kind (entries, no
      commit-index movement), or won the election (the leader sets adopt
      after its vote quorum);
    - {e commit} — moved its commit index (second-kind AppendEntries, or
      the leader seeing an ack quorum).

    The reconciliator is the randomized election timer (Algorithm 11):
    its "invocation" is the election-timeout event, and its effect is the
    timing shake-up rather than the returned value.

    {2 What is checked}

    The literal per-round VAC coherence over adopt & commit cannot hold in
    Raft: a processor cut off from the leader stays {e vacillate} in the
    very term the leader commits (the paper's own proof of Lemma 7
    restricts attention to processors "which have not failed during the
    term").  {!check_vac_view} therefore checks the defensible core:

    - per-term value coherence: all adopt/commit outputs of one term carry
      the same value;
    - cross-term commit agreement: every commit of the whole execution
      carries one value (leader completeness + state machine safety);
    - decision agreement and validity.

    Convergence is also not claimed — the paper notes Raft lacks it as-is
    and sketches a decentralized variant (see {!Decentralized}). *)

val command_of_value : int -> Types.command
(** ["D&S:<v>"] — the decide-and-stop-applying command. *)

val value_of_command : Types.command -> int
(** @raise Invalid_argument on anything but a D&S command. *)

type t

val create : cluster:Cluster.t -> inputs:int array -> t
(** Wire a consensus instance onto a (not yet started) cluster: sets each
    replica's leadership hook and apply callback.  [inputs] has one value
    per replica. *)

val cluster : t -> Cluster.t

val decision : t -> int -> int option
(** The value processor [i] has decided, if any. *)

val decisions : t -> (int * int) list
(** All decisions so far as [(pid, value)]. *)

val run_until_all_decided : ?timeout:int -> t -> bool
(** Advance the simulation until every non-stopped replica has decided. *)

(** One processor's VAC output for one term. *)
type observation = {
  obs_pid : int;
  obs_term : int;
  obs : int Consensus.Types.vac_result;
}

val vac_view : t -> observation list
(** Per-(processor, term) VAC classification of everything observed so
    far.  Terms with no event for a processor count as vacillate with the
    processor's input value. *)

val reconciliator_invocations : t -> (int * int) list
(** [(pid, term)] pairs at which the timer reconciliator fired (election
    timeouts). *)

val adopt_upgrades : t -> int
(** How many (processor, term) observations passed through the adopt
    stage (first-kind AppendEntries accepted, or election won) before
    upgrading to commit — {!vac_view} reports only the strongest level
    per pair, so this counter preserves the intermediate stage. *)

val check_vac_view : t -> string list
(** The checks described above; empty = all hold. *)
