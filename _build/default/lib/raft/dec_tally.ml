type phase_tally = {
  seen1 : bool array;
  seen2 : bool array;
  mutable proposers : int;
  mutable arrivals_rev : (int * int) list;  (* (src, value), newest first *)
  proposal_counts : (int, int) Hashtbl.t;
  mutable seconds : int;
  ratify_counts : (int, int) Hashtbl.t;
}

type t = { n : int; phases : (int, phase_tally) Hashtbl.t }

let phase_tally t phase =
  match Hashtbl.find_opt t.phases phase with
  | Some p -> p
  | None ->
      let p =
        {
          seen1 = Array.make t.n false;
          seen2 = Array.make t.n false;
          proposers = 0;
          arrivals_rev = [];
          proposal_counts = Hashtbl.create 8;
          seconds = 0;
          ratify_counts = Hashtbl.create 8;
        }
      in
      Hashtbl.replace t.phases phase p;
      p

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let ingest t env =
  let src = env.Netsim.Async_net.src in
  match env.Netsim.Async_net.payload with
  | Decentralized_msg.Propose { phase; value } ->
      let p = phase_tally t phase in
      if not p.seen1.(src) then begin
        p.seen1.(src) <- true;
        p.proposers <- p.proposers + 1;
        p.arrivals_rev <- (src, value) :: p.arrivals_rev;
        bump p.proposal_counts value
      end
  | Decentralized_msg.Second { phase; ratify } ->
      let p = phase_tally t phase in
      if not p.seen2.(src) then begin
        p.seen2.(src) <- true;
        p.seconds <- p.seconds + 1;
        match ratify with Some v -> bump p.ratify_counts v | None -> ()
      end

let attach net ~me =
  let t = { n = Netsim.Async_net.n net; phases = Hashtbl.create 32 } in
  Netsim.Async_net.set_handler net me (ingest t);
  t

let proposers t ~phase = (phase_tally t phase).proposers

let proposals_in_arrival_order t ~phase =
  List.rev (phase_tally t phase).arrivals_rev

let majority_value t ~phase ~n =
  Hashtbl.fold
    (fun v c acc -> if 2 * c > n then Some v else acc)
    (phase_tally t phase).proposal_counts None

let second_senders t ~phase = (phase_tally t phase).seconds

let ratifies_for t ~phase v =
  Option.value ~default:0 (Hashtbl.find_opt (phase_tally t phase).ratify_counts v)

let ratified_values t ~phase =
  Hashtbl.fold (fun v _ acc -> v :: acc) (phase_tally t phase).ratify_counts []
  |> List.sort_uniq compare

let forget_below t ~phase =
  Hashtbl.iter
    (fun ph _ -> if ph < phase then Hashtbl.remove t.phases ph)
    (Hashtbl.copy t.phases)
