type t =
  | Propose of { phase : int; value : int }
  | Second of { phase : int; ratify : int option }

let phase = function Propose { phase; _ } | Second { phase; _ } -> phase

let pp ppf = function
  | Propose { phase; value } -> Format.fprintf ppf "<1, %d>@%d" value phase
  | Second { phase; ratify = Some v } -> Format.fprintf ppf "<2, %d, ratify>@%d" v phase
  | Second { phase; ratify = None } -> Format.fprintf ppf "<2, ?>@%d" phase
