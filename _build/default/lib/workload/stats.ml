type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let summarize values =
  match values with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let arr = Array.of_list values in
      Array.sort compare arr;
      let n = Array.length arr in
      let fn = float_of_int n in
      let total = Array.fold_left ( +. ) 0.0 arr in
      let mean = total /. fn in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 arr /. fn
      in
      {
        count = n;
        mean;
        stddev = sqrt var;
        min = arr.(0);
        max = arr.(n - 1);
        median = percentile arr 0.5;
        p90 = percentile arr 0.9;
        p99 = percentile arr 0.99;
      }

let of_ints values = summarize (List.map float_of_int values)

let pp_summary ppf s =
  Format.fprintf ppf "%.2f ± %.2f (med %.1f, p99 %.1f)" s.mean s.stddev s.median
    s.p99

let mean = function
  | [] -> 0.0
  | values -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)

let fraction = function
  | [] -> 0.0
  | bools ->
      let t = List.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bools in
      float_of_int t /. float_of_int (List.length bools)

let ascii_histogram ?(bins = 10) ?(width = 40) values =
  match values with
  | [] -> []
  | _ ->
      let lo = List.fold_left Float.min infinity values in
      let hi = List.fold_left Float.max neg_infinity values in
      let bins = max 1 bins in
      let span = hi -. lo in
      let counts = Array.make bins 0 in
      List.iter
        (fun v ->
          let i =
            if span = 0.0 then 0
            else
              min (bins - 1)
                (int_of_float (float_of_int bins *. (v -. lo) /. span))
          in
          counts.(i) <- counts.(i) + 1)
        values;
      let peak = Array.fold_left max 1 counts in
      List.init bins (fun i ->
          let b_lo = lo +. (span *. float_of_int i /. float_of_int bins) in
          let b_hi = lo +. (span *. float_of_int (i + 1) /. float_of_int bins) in
          let label = Printf.sprintf "[%8.1f, %8.1f)" b_lo b_hi in
          let bar_len = counts.(i) * width / peak in
          (label, counts.(i), String.make bar_len '#'))

let pp_histogram ppf rows =
  List.iter
    (fun (label, count, bar) -> Format.fprintf ppf "%s %5d %s@." label count bar)
    rows
