(** Plain-text table rendering for the experiment harness. *)

val print :
  ?ppf:Format.formatter ->
  title:string ->
  headers:string list ->
  string list list ->
  unit
(** Column-aligned table with a title rule.  Default formatter:
    [Format.std_formatter]. *)

val csv : headers:string list -> string list list -> string
(** The same data as comma-separated text (values containing commas or
    quotes are quoted). *)
