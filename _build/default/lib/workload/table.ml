let print ?(ppf = Format.std_formatter) ~title ~headers rows =
  let all = headers :: rows in
  let cols = List.fold_left (fun acc row -> max acc (List.length row)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (max 1 cols - 1))
  in
  let hline = String.make (max total_width (String.length title)) '-' in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
        row
    in
    String.concat "  " cells
  in
  Format.fprintf ppf "%s@.%s@.%s@." title hline (render_row headers);
  Format.fprintf ppf "%s@." hline;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) rows;
  Format.fprintf ppf "@."

let quote cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let csv ~headers rows =
  let line row = String.concat "," (List.map quote row) in
  String.concat "\n" (line headers :: List.map line rows)
