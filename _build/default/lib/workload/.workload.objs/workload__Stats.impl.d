lib/workload/stats.ml: Array Float Format List Printf String
