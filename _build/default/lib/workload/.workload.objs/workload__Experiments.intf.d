lib/workload/experiments.mli: Format Phase_king Stats
