lib/workload/experiments.ml: Array Ben_or Bool Consensus Dsim Filename Format Fun Int64 List Netsim Phase_king Printf Raft Sharedmem Stats String Sys Table
