lib/workload/table.ml: Array Format List String
