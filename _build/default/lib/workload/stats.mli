(** Summary statistics for experiment measurements. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val of_ints : int list -> summary

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0, 1\]], nearest-rank on a sorted
    array. *)

val pp_summary : Format.formatter -> summary -> unit
(** Renders as [mean ± stddev (median m, p99 x)]. *)

val mean : float list -> float
val fraction : bool list -> float
(** Share of [true] values (0 on empty input). *)

val ascii_histogram :
  ?bins:int -> ?width:int -> float list -> (string * int * string) list
(** [(range_label, count, bar)] rows — the terminal stand-in for a figure.
    Bins are equal-width over [\[min, max\]]; [bins] defaults to 10, the
    longest bar to [width] (default 40) characters.  Empty input yields no
    rows. *)

val pp_histogram : Format.formatter -> (string * int * string) list -> unit
(** One row per line: [label  count  bar]. *)
