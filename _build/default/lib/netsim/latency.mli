(** Message-delay models for the asynchronous network.

    A latency model is consulted once per message send and returns the
    virtual-time delay until delivery.  All randomness comes from the
    network's private deterministic stream. *)

type t =
  | Fixed of int  (** every message takes exactly this long *)
  | Uniform of int * int  (** uniform in [\[lo, hi\]] inclusive *)
  | Exponential of { mean : float; cap : int }
      (** memoryless delays, truncated at [cap] to keep runs finite *)
  | Per_link of (src:int -> dst:int -> rng:Dsim.Rng.t -> int)
      (** fully programmable, e.g. an adversarial scheduler *)

val draw : t -> src:int -> dst:int -> rng:Dsim.Rng.t -> int
(** Sample a delay (always >= 0). *)

val pp : Format.formatter -> t -> unit
