(** Lock-step synchronous network with Byzantine processes.

    The synchronous model of Phase-King: computation proceeds in rounds; in
    each round every correct processor broadcasts one message and then
    receives the messages all processors sent that round.

    Correct processors run direct-style protocol code and call {!exchange}
    once per round.  Byzantine processors do not run code at all — they are
    a {!strategy} value the network consults when building each round's
    delivery matrix.  The strategy sees the correct processors' messages of
    the {e current} round before choosing its own (a rushing adversary) and
    may send different messages to different destinations (equivocation). *)

type 'msg strategy = {
  strategy_name : string;
  act :
    round:int ->
    byz:int ->
    view:'msg option array ->
    dst:int ->
    rng:Dsim.Rng.t ->
    'msg option;
      (** [act ~round ~byz ~view ~dst ~rng] is what Byzantine processor
          [byz] sends to [dst] in [round], given the correct processors'
          messages [view] (indexed by source; [None] for Byzantine or
          crashed slots).  [None] means send nothing. *)
}

type 'msg t

val create :
  Dsim.Engine.t -> n:int -> byzantine:int list -> strategy:'msg strategy -> 'msg t
(** A synchronous network of [n] processors; those whose ids appear in
    [byzantine] are controlled by [strategy].
    @raise Invalid_argument on out-of-range or duplicate ids. *)

val n : 'msg t -> int
val engine : 'msg t -> Dsim.Engine.t

val is_byzantine : 'msg t -> int -> bool
val byzantine_count : 'msg t -> int

val exchange : 'msg t -> me:int -> 'msg -> 'msg option array
(** Broadcast [msg] and block until the round completes; returns the
    messages received, indexed by source ([None] = nothing received from
    that processor).  Must be called from inside the engine process running
    correct processor [me]; every live correct processor must call it the
    same number of times. *)

val current_round : 'msg t -> int
(** Rounds completed so far. *)

val crash : 'msg t -> int -> unit
(** Remove a correct processor from the lock-step barrier (used to model a
    correct processor stopping early); its subsequent rows are [None]. *)
