type t =
  | Fixed of int
  | Uniform of int * int
  | Exponential of { mean : float; cap : int }
  | Per_link of (src:int -> dst:int -> rng:Dsim.Rng.t -> int)

let draw t ~src ~dst ~rng =
  let d =
    match t with
    | Fixed d -> d
    | Uniform (lo, hi) -> Dsim.Rng.int_in rng lo hi
    | Exponential { mean; cap } ->
        let d = int_of_float (Dsim.Rng.exponential rng ~mean) in
        if d > cap then cap else d
    | Per_link f -> f ~src ~dst ~rng
  in
  if d < 0 then 0 else d

let pp ppf = function
  | Fixed d -> Format.fprintf ppf "fixed(%d)" d
  | Uniform (lo, hi) -> Format.fprintf ppf "uniform(%d,%d)" lo hi
  | Exponential { mean; cap } -> Format.fprintf ppf "exp(mean=%g,cap=%d)" mean cap
  | Per_link _ -> Format.fprintf ppf "per-link(fn)"
