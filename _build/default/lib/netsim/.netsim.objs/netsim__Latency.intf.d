lib/netsim/latency.mli: Dsim Format
