lib/netsim/latency.ml: Dsim Format
