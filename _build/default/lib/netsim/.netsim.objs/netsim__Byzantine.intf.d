lib/netsim/byzantine.mli: Dsim Sync_net
