lib/netsim/async_net.mli: Dsim Latency
