lib/netsim/sync_net.mli: Dsim
