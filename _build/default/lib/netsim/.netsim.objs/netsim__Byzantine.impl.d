lib/netsim/byzantine.ml: Array Dsim Printf Sync_net
