lib/netsim/sync_net.ml: Array Dsim Hashtbl List Printf
