lib/netsim/async_net.ml: Array Dsim Latency List Printf String
