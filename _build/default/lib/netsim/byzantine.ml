open Sync_net

let silent =
  { strategy_name = "silent"; act = (fun ~round:_ ~byz:_ ~view:_ ~dst:_ ~rng:_ -> None) }

let constant msg =
  {
    strategy_name = "constant";
    act = (fun ~round:_ ~byz:_ ~view:_ ~dst:_ ~rng:_ -> Some msg);
  }

let random_of choices =
  {
    strategy_name = "random";
    act =
      (fun ~round:_ ~byz:_ ~view:_ ~dst:_ ~rng ->
        if Array.length choices = 0 then None else Some (Dsim.Rng.pick rng choices));
  }

let split_world low high =
  {
    strategy_name = "split-world";
    act =
      (fun ~round:_ ~byz:_ ~view ~dst ~rng:_ ->
        let n = Array.length view in
        if dst < n / 2 then Some low else Some high);
  }

let echo_first_honest =
  {
    strategy_name = "echo-first-honest";
    act =
      (fun ~round:_ ~byz:_ ~view ~dst:_ ~rng:_ ->
        let rec first i =
          if i >= Array.length view then None
          else match view.(i) with Some _ as m -> m | None -> first (i + 1)
        in
        first 0);
  }

let crash_after rounds inner =
  {
    strategy_name = Printf.sprintf "%s-then-crash@%d" inner.strategy_name rounds;
    act =
      (fun ~round ~byz ~view ~dst ~rng ->
        if round >= rounds then None else inner.act ~round ~byz ~view ~dst ~rng);
  }

let alternate even odd =
  {
    strategy_name = Printf.sprintf "alt(%s,%s)" even.strategy_name odd.strategy_name;
    act =
      (fun ~round ~byz ~view ~dst ~rng ->
        let s = if round mod 2 = 0 then even else odd in
        s.act ~round ~byz ~view ~dst ~rng);
  }

let custom ~name act = { strategy_name = name; act }
