(** A library of reusable Byzantine strategies for {!Sync_net}.

    Strategies here are generic in the message type; algorithm-specific
    attacks (e.g. against Phase-King's vote counting) live next to the
    algorithm they target. *)

val silent : 'msg Sync_net.strategy
(** Never sends anything (fail-stop behaviour from round 0). *)

val constant : 'msg -> 'msg Sync_net.strategy
(** Sends the same fixed message to everyone in every round. *)

val random_of : 'msg array -> 'msg Sync_net.strategy
(** Sends an independently random choice from the array to {e each}
    destination — maximal noise, with equivocation. *)

val split_world : 'msg -> 'msg -> 'msg Sync_net.strategy
(** Classic equivocation: the lower half of destinations gets the first
    message, the upper half the second. *)

val echo_first_honest : 'msg Sync_net.strategy
(** Rushing copycat: repeats the first correct processor's message of the
    current round (silent if the view is empty). *)

val crash_after : int -> 'msg Sync_net.strategy -> 'msg Sync_net.strategy
(** Behaves like the inner strategy for the given number of rounds, then
    goes permanently silent. *)

val alternate :
  'msg Sync_net.strategy -> 'msg Sync_net.strategy -> 'msg Sync_net.strategy
(** Uses the first strategy on even rounds, the second on odd rounds. *)

val custom :
  name:string ->
  (round:int ->
  byz:int ->
  view:'msg option array ->
  dst:int ->
  rng:Dsim.Rng.t ->
  'msg option) ->
  'msg Sync_net.strategy
(** Escape hatch for bespoke adversaries. *)
