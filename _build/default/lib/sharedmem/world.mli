(** An asynchronous shared-memory world: atomic registers accessed by
    processes whose steps are interleaved by the simulation scheduler.

    Each register operation is atomic and instantaneous; {e between}
    operations a process pauses for a scheduler-chosen amount of virtual
    time, which is what produces (adversarially varied) interleavings.
    This is the standard asynchronous shared-memory model of Gafni's
    adopt-commit and Aspnes' conciliators, with the adversary's power
    expressed through the step-delay policy. *)

(** How long a process pauses before each register operation. *)
type step_policy =
  | Uniform_steps of int * int  (** delay uniform in [\[lo, hi\]] *)
  | Fixed_steps of int
  | Custom_steps of (me:int -> op:int -> rng:Dsim.Rng.t -> int)
      (** full adversarial control: [op] counts the process's operations *)

type t

val create : Dsim.Engine.t -> ?steps:step_policy -> unit -> t
(** Default policy: [Uniform_steps (1, 10)]. *)

val engine : t -> Dsim.Engine.t

(** A process handle; carries the identity and private randomness used for
    step delays. *)
type proc = { world : t; me : int; ectx : Dsim.Engine.ctx }

val step : proc -> unit
(** Pause before the next operation (called internally by {!Reg}). *)

val ops_performed : t -> int
(** Total register operations executed so far (a work measure). *)

(** Atomic read/write registers. *)
module Reg : sig
  type 'a reg

  val make : 'a -> 'a reg
  val read : proc -> 'a reg -> 'a
  val write : proc -> 'a reg -> 'a -> unit
end
