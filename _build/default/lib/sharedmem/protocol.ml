module Types = Consensus.Types
module Reg = World.Reg

module Make (V : Consensus.Objects.VALUE) = struct
  type bank = {
    proposals : V.t option Reg.reg array;  (* the A array *)
    flags : (bool * V.t) option Reg.reg array;  (* the D array *)
  }

  type shared = {
    world : World.t;
    n : int;
    write_probability : float;
    banks : (string * int, bank) Hashtbl.t;
    conc_regs : (int, V.t option Reg.reg) Hashtbl.t;
    base_ops : int;
  }

  let create_shared ~n ?write_probability world =
    let write_probability =
      match write_probability with
      | Some p -> p
      | None -> 1.0 /. float_of_int (2 * n)
    in
    if n <= 0 then invalid_arg "Sharedmem.create_shared: n must be positive";
    {
      world;
      n;
      write_probability;
      banks = Hashtbl.create 32;
      conc_regs = Hashtbl.create 32;
      base_ops = World.ops_performed world;
    }

  let register_operations shared =
    World.ops_performed shared.world - shared.base_ops

  type ctx = { shared : shared; proc : World.proc }

  let bank shared instance round =
    let key = (instance, round) in
    match Hashtbl.find_opt shared.banks key with
    | Some b -> b
    | None ->
        let b =
          {
            proposals = Array.init shared.n (fun _ -> Reg.make None);
            flags = Array.init shared.n (fun _ -> Reg.make None);
          }
        in
        Hashtbl.replace shared.banks key b;
        b

  let conc_reg shared round =
    match Hashtbl.find_opt shared.conc_regs round with
    | Some r -> r
    | None ->
        let r = Reg.make None in
        Hashtbl.replace shared.conc_regs round r;
        r

  (* Gafni-style adopt-commit from registers:
     1. publish the proposal;
     2. read all proposals; note whether a different value is visible;
     3. publish a (saw-agreement?, value) flag;
     4. read all flags: commit when only agreeing flags (necessarily on one
        value) are visible, adopt a flagged value otherwise. *)
  let ac_invoke instance ctx ~round v =
    let shared = ctx.shared in
    let b = bank shared instance round in
    let me = ctx.proc.World.me in
    Reg.write ctx.proc b.proposals.(me) (Some v);
    let saw_other = ref false in
    for j = 0 to shared.n - 1 do
      match Reg.read ctx.proc b.proposals.(j) with
      | Some u when not (V.equal u v) -> saw_other := true
      | Some _ | None -> ()
    done;
    Reg.write ctx.proc b.flags.(me) (Some (not !saw_other, v));
    let any_conflict = ref false in
    let agreed = ref None in
    for j = 0 to shared.n - 1 do
      match Reg.read ctx.proc b.flags.(j) with
      | None -> ()
      | Some (true, u) -> (
          match !agreed with
          | None -> agreed := Some u
          | Some w -> if not (V.equal w u) then any_conflict := true)
      | Some (false, _) -> any_conflict := true
    done;
    match (!any_conflict, !agreed) with
    | false, Some u -> Types.AC_commit u
    | true, Some u -> Types.AC_adopt u
    | (false | true), None -> Types.AC_adopt v

  module Ac_a = struct
    type nonrec ctx = ctx

    module Value = V

    let invoke ctx = ac_invoke "a" ctx
  end

  module Ac_b = struct
    type nonrec ctx = ctx

    module Value = V

    let invoke ctx = ac_invoke "b" ctx
  end

  module Conciliator = struct
    type nonrec ctx = ctx

    module Value = V

    let invoke ctx ~round result =
      let v = Types.ac_value result in
      let shared = ctx.shared in
      let r = conc_reg shared round in
      let rng = ctx.proc.World.ectx.Dsim.Engine.rng in
      let rec attempt () =
        match Reg.read ctx.proc r with
        | Some x -> x
        | None ->
            if Dsim.Rng.float rng 1.0 < shared.write_probability then begin
              Reg.write ctx.proc r (Some v);
              (* Re-read: concurrent writers converge on the last write. *)
              match Reg.read ctx.proc r with Some x -> x | None -> v
            end
            else attempt ()
      in
      attempt ()
  end

  module Vac = Consensus.Constructions.Vac_of_two_ac (Ac_a) (Ac_b)

  module Consensus_sm = struct
    module T = Consensus.Template.Make_ac (Ac_a) (Conciliator)

    let consensus = T.consensus
  end
end
