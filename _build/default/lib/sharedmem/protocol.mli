(** Shared-memory consensus objects in the Aspnes/Gafni lineage the paper
    builds on: a register-based adopt-commit (Gafni), Aspnes'
    probabilistic-write conciliator, their composition through the
    Algorithm-2 template, and the Section-5 VAC-from-two-AC construction.

    Everything is wait-free: no operation waits on another process, so the
    adversary may stop any subset of processes at any time and the rest
    still terminate (the property tests exercise exactly that). *)

module Make (V : Consensus.Objects.VALUE) : sig
  type shared
  (** All registers of one consensus instance: per-(object, round) banks
      for the adopt-commit proposals/flags and per-round conciliator
      registers. *)

  val create_shared : n:int -> ?write_probability:float -> World.t -> shared
  (** [write_probability] is the conciliator's per-attempt write chance
      (default [1 / (2n)], Aspnes' regime). *)

  val register_operations : shared -> int
  (** Register operations executed against this instance's world. *)

  type ctx = { shared : shared; proc : World.proc }

  (** Two {e distinct} Gafni adopt-commit objects (separate register
      banks), so they can feed the two-AC construction. *)
  module Ac_a : Consensus.Objects.AC with type ctx = ctx and type Value.t = V.t

  module Ac_b : Consensus.Objects.AC with type ctx = ctx and type Value.t = V.t

  (** Aspnes' conciliator: spin on a register; while it is empty, write
      your value with small probability; return the first value you see. *)
  module Conciliator :
    Consensus.Objects.CONCILIATOR with type ctx = ctx and type Value.t = V.t

  (** Section 5: VAC built from {!Ac_a} and {!Ac_b}. *)
  module Vac : Consensus.Objects.VAC with type ctx = ctx and type Value.t = V.t

  (** Algorithm 2 over {!Ac_a} + {!Conciliator}.  Deciding at the first
      commit is safe here — unlike Phase-King's king-based conciliator,
      the probabilistic-write conciliator preserves unanimity. *)
  module Consensus_sm : sig
    val consensus :
      ?max_rounds:int ->
      ?observer:V.t Consensus.Template.observer ->
      ctx ->
      V.t ->
      V.t * int
  end
end
