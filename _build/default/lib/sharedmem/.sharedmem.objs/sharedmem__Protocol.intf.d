lib/sharedmem/protocol.mli: Consensus World
