lib/sharedmem/world.mli: Dsim
