lib/sharedmem/explore.mli: Dsim World
