lib/sharedmem/world.ml: Dsim
