lib/sharedmem/explore.ml: Array Consensus Dsim Format List Protocol World
