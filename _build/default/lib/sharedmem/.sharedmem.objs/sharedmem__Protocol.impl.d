lib/sharedmem/protocol.ml: Array Consensus Dsim Hashtbl World
