(** Ben-Or rebuilt through {e Aspnes' AC template} (paper Algorithm 2) —
    the control experiment for the paper's closing claim.

    The paper's conclusion: VAC "simplifies the role of the reconciliator
    such that in some cases it is only a procedure that flips a coin and
    does not require machinery to ensure validity".  Here is the other
    side of that trade, concretely: a correct asynchronous adopt-commit
    (two exchanges) paired with a conciliator that {e must} carry validity
    machinery (a third exchange) — a bare coin would break the template's
    commit⇒decide rule exactly as the Phase-King counterexample does.

    Per template round:

    - {!Ac}: broadcast ⟨1, v⟩, await [n-t]; flag "agreement seen" iff all
      received phase-1 values were equal; broadcast the flag; await [n-t];
      commit when only agreeing flags (necessarily on one value) were
      received, adopt a flagged value otherwise.
    - {!Conciliator}: broadcast the carried value, await [n-t]; if all
      received values agree return that value (this is the validity
      machinery — unanimity must survive the conciliator), otherwise flip
      the coin (private, or the weak common coin when installed).

    The cost: three broadcasts per processor per round against the VAC
    decomposition's two.  The E7 machinery-cost table quantifies it.

    Model: asynchronous message passing, [2t < n] crash failures, binary
    values.  All counts are distinct-sender. *)

type msg =
  | Propose of { phase : int; value : bool }  (** AC exchange 1 *)
  | Flag of { phase : int; saw_agreement : bool; value : bool }
      (** AC exchange 2 *)
  | Suggest of { phase : int; value : bool }  (** conciliator exchange *)

type ctx

val make_ctx :
  ?coin:Common_coin.t ->
  net:msg Netsim.Async_net.t ->
  me:int ->
  faults:int ->
  rng:Dsim.Rng.t ->
  unit ->
  ctx
(** Installs the node's tally as its delivery handler.
    @raise Invalid_argument unless [0 <= me < n] and [2 * faults < n]. *)

module Ac : Consensus.Objects.AC with type ctx = ctx and type Value.t = bool

module Conciliator :
  Consensus.Objects.CONCILIATOR with type ctx = ctx and type Value.t = bool

module Consensus_ac : sig
  val consensus :
    ?max_rounds:int ->
    ?observer:bool Consensus.Template.observer ->
    ctx ->
    bool ->
    bool * int
end

val broadcasts_per_round : int
(** 3 — against the VAC decomposition's 2. *)
