(** Wire messages of Ben-Or's randomized binary consensus.

    Each template round (the paper's [m]) has two message exchanges:
    a report ⟨1, v⟩ carrying the processor's current preference, then a
    ratification ⟨2, v, ratify⟩ — or the non-committal ⟨2, ?⟩ — depending
    on whether a majority preference was observed. *)

type t =
  | Report of { phase : int; value : bool }  (** ⟨1, v⟩ *)
  | Ratify of { phase : int; value : bool }  (** ⟨2, v, ratify⟩ *)
  | Question of { phase : int }  (** ⟨2, ?⟩ *)

val phase : t -> int
(** The template round the message belongs to. *)

val is_step1 : phase:int -> t -> bool
(** Report of the given phase. *)

val is_step2 : phase:int -> t -> bool
(** Ratify or Question of the given phase. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
