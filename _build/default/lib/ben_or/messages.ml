type t =
  | Report of { phase : int; value : bool }
  | Ratify of { phase : int; value : bool }
  | Question of { phase : int }

let phase = function
  | Report { phase; _ } | Ratify { phase; _ } | Question { phase } -> phase

let is_step1 ~phase:m = function
  | Report { phase; _ } -> phase = m
  | Ratify _ | Question _ -> false

let is_step2 ~phase:m = function
  | Ratify { phase; _ } | Question { phase } -> phase = m
  | Report _ -> false

let pp ppf = function
  | Report { phase; value } -> Format.fprintf ppf "<1, %b>@%d" value phase
  | Ratify { phase; value } -> Format.fprintf ppf "<2, %b, ratify>@%d" value phase
  | Question { phase } -> Format.fprintf ppf "<2, ?>@%d" phase

let to_string m = Format.asprintf "%a" pp m
