module Types = Consensus.Types
module Net = Netsim.Async_net

type msg =
  | Propose of { phase : int; value : bool }
  | Flag of { phase : int; saw_agreement : bool; value : bool }
  | Suggest of { phase : int; value : bool }

(* Per-phase distinct-sender counters.  For "all values seen so far are
   equal" we keep the first value and a mixed bit — enough because values
   are binary and the checks are monotone. *)
type phase_tally = {
  seen1 : bool array;
  seen2 : bool array;
  seen3 : bool array;
  mutable proposers : int;
  mutable propose_first : bool option;
  mutable propose_mixed : bool;
  mutable flaggers : int;
  mutable any_disagree_flag : bool;
  mutable agree_value : bool option;
  mutable agree_conflict : bool;
  mutable suggesters : int;
  mutable suggest_first : bool option;
  mutable suggest_mixed : bool;
}

type tally = { n : int; phases : (int, phase_tally) Hashtbl.t }

let phase_tally t phase =
  match Hashtbl.find_opt t.phases phase with
  | Some p -> p
  | None ->
      let p =
        {
          seen1 = Array.make t.n false;
          seen2 = Array.make t.n false;
          seen3 = Array.make t.n false;
          proposers = 0;
          propose_first = None;
          propose_mixed = false;
          flaggers = 0;
          any_disagree_flag = false;
          agree_value = None;
          agree_conflict = false;
          suggesters = 0;
          suggest_first = None;
          suggest_mixed = false;
        }
      in
      Hashtbl.replace t.phases phase p;
      p

let note_value first mixed v =
  match !first with
  | None -> first := Some v
  | Some w -> if w <> v then mixed := true

let ingest t env =
  let src = env.Net.src in
  match env.Net.payload with
  | Propose { phase; value } ->
      let p = phase_tally t phase in
      if not p.seen1.(src) then begin
        p.seen1.(src) <- true;
        p.proposers <- p.proposers + 1;
        let first = ref p.propose_first and mixed = ref p.propose_mixed in
        note_value first mixed value;
        p.propose_first <- !first;
        p.propose_mixed <- !mixed
      end
  | Flag { phase; saw_agreement; value } ->
      let p = phase_tally t phase in
      if not p.seen2.(src) then begin
        p.seen2.(src) <- true;
        p.flaggers <- p.flaggers + 1;
        if saw_agreement then begin
          let first = ref p.agree_value and conflict = ref p.agree_conflict in
          note_value first conflict value;
          p.agree_value <- !first;
          p.agree_conflict <- !conflict
        end
        else p.any_disagree_flag <- true
      end
  | Suggest { phase; value } ->
      let p = phase_tally t phase in
      if not p.seen3.(src) then begin
        p.seen3.(src) <- true;
        p.suggesters <- p.suggesters + 1;
        let first = ref p.suggest_first and mixed = ref p.suggest_mixed in
        note_value first mixed value;
        p.suggest_first <- !first;
        p.suggest_mixed <- !mixed
      end

type ctx = {
  net : msg Net.t;
  me : int;
  faults : int;
  rng : Dsim.Rng.t;
  coin : Common_coin.t option;
  tally : tally;
}

let make_ctx ?coin ~net ~me ~faults ~rng () =
  let n = Net.n net in
  if me < 0 || me >= n then invalid_arg "Ac_variant.make_ctx: bad processor id";
  if 2 * faults >= n then invalid_arg "Ac_variant.make_ctx: requires 2t < n";
  let tally = { n; phases = Hashtbl.create 32 } in
  Net.set_handler net me (ingest tally);
  { net; me; faults; rng; coin; tally }

(* The committing processor halts immediately (template Alg. 2), which the
   others cannot distinguish from a crash; it therefore leaves behind its
   conciliator contribution for this round and a full set of round-(m+1)
   messages, so survivors keep their quorums.  By AC coherence all values
   concerned are the committed one, so the gifts never inject a foreign
   value. *)
let parting_gift ctx ~phase u =
  Net.broadcast ctx.net ~src:ctx.me (Suggest { phase; value = u });
  Net.broadcast ctx.net ~src:ctx.me (Propose { phase = phase + 1; value = u });
  Net.broadcast ctx.net ~src:ctx.me
    (Flag { phase = phase + 1; saw_agreement = true; value = u });
  Net.broadcast ctx.net ~src:ctx.me (Suggest { phase = phase + 1; value = u })

let ac_invoke ctx ~round:m v =
  let n = Net.n ctx.net in
  let t = ctx.faults in
  Net.broadcast ctx.net ~src:ctx.me (Propose { phase = m; value = v });
  let p = phase_tally ctx.tally m in
  Dsim.Engine.await_cond (fun () -> p.proposers >= n - t);
  let saw_agreement = not p.propose_mixed in
  let flag_value =
    if saw_agreement then Option.value ~default:v p.propose_first else v
  in
  Net.broadcast ctx.net ~src:ctx.me
    (Flag { phase = m; saw_agreement; value = flag_value });
  Dsim.Engine.await_cond (fun () -> p.flaggers >= n - t);
  match (p.any_disagree_flag, p.agree_conflict, p.agree_value) with
  | false, false, Some u ->
      parting_gift ctx ~phase:m u;
      Types.AC_commit u
  | true, _, Some u | _, true, Some u -> Types.AC_adopt u
  | _, _, None -> Types.AC_adopt v

let conciliator_invoke ctx ~round:m result =
  let n = Net.n ctx.net in
  let t = ctx.faults in
  let w = Types.ac_value result in
  Net.broadcast ctx.net ~src:ctx.me (Suggest { phase = m; value = w });
  let p = phase_tally ctx.tally m in
  Dsim.Engine.await_cond (fun () -> p.suggesters >= n - t);
  (* Validity machinery: unanimity among the received suggestions must
     survive; only a visibly split round may fall back to the coin. *)
  if not p.suggest_mixed then Option.value ~default:w p.suggest_first
  else
    match ctx.coin with
    | None -> Dsim.Rng.bool ctx.rng
    | Some coin -> Common_coin.flip coin ~local_rng:ctx.rng ~round:m

module Ac = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Bool_value

  let invoke = ac_invoke
end

module Conciliator = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Bool_value

  let invoke = conciliator_invoke
end

module Consensus_ac = struct
  module T = Consensus.Template.Make_ac (Ac) (Conciliator)

  let consensus = T.consensus
end

let broadcasts_per_round = 3
