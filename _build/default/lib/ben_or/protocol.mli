(** Ben-Or's algorithm, decomposed per the paper (Section 4.2) and as the
    original monolithic loop.

    Model: asynchronous message passing, [t < n/2] crash failures.

    The decomposition (paper Algorithms 5 and 6):
    - {!Vac}: ⟨1, v⟩ exchange, majority test, ⟨2, ·⟩ exchange; commit on
      more than [t] ratifies, adopt on at least one, vacillate otherwise.
    - {!Reconciliator}: a local fair coin flip.

    Both are instantiated in {!Consensus_decomposed} through the generic
    template; {!monolithic_consensus} is the control implementation that
    fuses the same steps into one loop. *)

type ctx = {
  net : Messages.t Netsim.Async_net.t;
  me : int;  (** this processor's id, also its engine pid by construction *)
  faults : int;  (** the resilience parameter t, with [2t < n] *)
  rng : Dsim.Rng.t;  (** private stream for coin flips *)
  tally : Tally.t;  (** incremental quorum counters (distinct senders) *)
  coin : Common_coin.t option;
      (** when present, the reconciliator uses this weak common coin
          instead of the paper's private coin flip *)
}

val make_ctx :
  ?coin:Common_coin.t ->
  net:Messages.t Netsim.Async_net.t ->
  me:int ->
  faults:int ->
  rng:Dsim.Rng.t ->
  unit ->
  ctx
(** Builds the context and installs the node's tally as its delivery
    handler — call it before any messages start flowing.
    @raise Invalid_argument unless [0 <= me < n] and [2 * faults < n]. *)

(** Paper Algorithm 5. *)
module Vac :
  Consensus.Objects.VAC with type ctx = ctx and type Value.t = bool

(** Paper Algorithm 6: [Reconciliator(X, σ, m) = CoinFlip()]. *)
module Reconciliator :
  Consensus.Objects.RECONCILIATOR with type ctx = ctx and type Value.t = bool

(** Algorithm 1 instantiated with {!Vac} and {!Reconciliator}. *)
module Consensus_decomposed : sig
  val consensus :
    ?max_rounds:int ->
    ?observer:bool Consensus.Template.observer ->
    ctx ->
    bool ->
    bool * int
end

val monolithic_consensus :
  ?max_rounds:int ->
  ?observer:bool Consensus.Template.observer ->
  ctx ->
  bool ->
  bool * int
(** The textbook single-loop Ben-Or, with the same observation hooks (its
    per-phase outcome classes are reported through the VAC vocabulary so
    the same monitors apply).  Message-for-message identical behaviour to
    the decomposed version is asserted by the E1 experiment. *)
