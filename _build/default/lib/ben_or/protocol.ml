module Types = Consensus.Types
module Async_net = Netsim.Async_net

type ctx = {
  net : Messages.t Async_net.t;
  me : int;
  faults : int;
  rng : Dsim.Rng.t;
  tally : Tally.t;
  coin : Common_coin.t option;
}

let make_ctx ?coin ~net ~me ~faults ~rng () =
  let n = Async_net.n net in
  if me < 0 || me >= n then invalid_arg "Ben_or.make_ctx: bad processor id";
  if 2 * faults >= n then invalid_arg "Ben_or.make_ctx: requires 2t < n";
  { net; me; faults; rng; tally = Tally.attach net ~me; coin }

(* One VAC invocation: the body of paper Algorithm 5.  All quorum counts
   come from the per-phase tally (distinct senders, O(1) reads), so the
   protocol is duplication-safe and long runs stay linear.

   Termination gadget: a processor about to return [commit] first
   broadcasts its step-1 and step-2 messages for the *next* phase.  The
   template halts on commit, and a silently halted decider is
   indistinguishable from a crash; without the gift, deciders + real
   crashes could exceed the t-budget and deadlock the remaining correct
   processors.  With it, every non-decider enters phase m+1 holding v (by
   coherence), sees full quorums, and commits one phase later. *)
let vac_invoke ctx ~round:m v =
  let n = Async_net.n ctx.net in
  let t = ctx.faults in
  Tally.forget_below ctx.tally ~phase:(m - 1);
  Async_net.broadcast ctx.net ~src:ctx.me (Messages.Report { phase = m; value = v });
  Dsim.Engine.await_cond (fun () -> Tally.step1_senders ctx.tally ~phase:m >= n - t);
  (* If a strict majority of all n processors reported w, ratify w; at most
     one value can clear that bar. *)
  let step2_msg =
    if Tally.reports_for ctx.tally ~phase:m true > n / 2 then
      Messages.Ratify { phase = m; value = true }
    else if Tally.reports_for ctx.tally ~phase:m false > n / 2 then
      Messages.Ratify { phase = m; value = false }
    else Messages.Question { phase = m }
  in
  Async_net.broadcast ctx.net ~src:ctx.me step2_msg;
  Dsim.Engine.await_cond (fun () -> Tally.step2_senders ctx.tally ~phase:m >= n - t);
  let commit w = Tally.ratifies_for ctx.tally ~phase:m w > t in
  let adopt w = Tally.ratifies_for ctx.tally ~phase:m w >= 1 in
  let parting_gift u =
    Async_net.broadcast ctx.net ~src:ctx.me
      (Messages.Report { phase = m + 1; value = u });
    Async_net.broadcast ctx.net ~src:ctx.me
      (Messages.Ratify { phase = m + 1; value = u })
  in
  if commit true then begin
    parting_gift true;
    Types.Commit true
  end
  else if commit false then begin
    parting_gift false;
    Types.Commit false
  end
  else if adopt true then Types.Adopt true
  else if adopt false then Types.Adopt false
  else Types.Vacillate v

module Vac = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Bool_value

  let invoke = vac_invoke
end

module Reconciliator = struct
  type nonrec ctx = ctx

  module Value = Consensus.Objects.Bool_value

  (* Paper Algorithm 6 is the [None] case: a private fair coin.  With a
     common coin installed, the same reconciliator slot upgrades Ben-Or to
     Rabin-style expected-constant rounds — the E2 ablation. *)
  let invoke ctx ~round _detected =
    match ctx.coin with
    | None -> Dsim.Rng.bool ctx.rng
    | Some coin -> Common_coin.flip coin ~local_rng:ctx.rng ~round
end

module Consensus_decomposed = struct
  module T = Consensus.Template.Make_vac (Vac) (Reconciliator)

  let consensus = T.consensus
end

(* The textbook fused loop, written independently of the object layer: one
   function, explicit mutable preference, inline message handling.  Used as
   the monolithic baseline the decomposition is compared against. *)
let monolithic_consensus ?(max_rounds = 10_000) ?observer ctx init =
  let observer =
    match observer with Some o -> o | None -> Consensus.Template.null_observer
  in
  let n = Async_net.n ctx.net in
  let t = ctx.faults in
  let v = ref init in
  let decision = ref None in
  let m = ref 0 in
  while !decision = None do
    incr m;
    let m = !m in
    if m > max_rounds then raise (Consensus.Template.No_decision max_rounds);
    Tally.forget_below ctx.tally ~phase:(m - 1);
    Async_net.broadcast ctx.net ~src:ctx.me
      (Messages.Report { phase = m; value = !v });
    Dsim.Engine.await_cond (fun () ->
        Tally.step1_senders ctx.tally ~phase:m >= n - t);
    Async_net.broadcast ctx.net ~src:ctx.me
      (if Tally.reports_for ctx.tally ~phase:m true > n / 2 then
         Messages.Ratify { phase = m; value = true }
       else if Tally.reports_for ctx.tally ~phase:m false > n / 2 then
         Messages.Ratify { phase = m; value = false }
       else Messages.Question { phase = m });
    Dsim.Engine.await_cond (fun () ->
        Tally.step2_senders ctx.tally ~phase:m >= n - t);
    let r1 = Tally.ratifies_for ctx.tally ~phase:m true
    and r0 = Tally.ratifies_for ctx.tally ~phase:m false in
    let outcome =
      if r1 > t then Types.Commit true
      else if r0 > t then Types.Commit false
      else if r1 >= 1 then Types.Adopt true
      else if r0 >= 1 then Types.Adopt false
      else Types.Vacillate !v
    in
    observer.on_detect ~round:m outcome;
    (match outcome with
    | Types.Commit u ->
        Async_net.broadcast ctx.net ~src:ctx.me
          (Messages.Report { phase = m + 1; value = u });
        Async_net.broadcast ctx.net ~src:ctx.me
          (Messages.Ratify { phase = m + 1; value = u });
        observer.on_decide ~round:m u;
        decision := Some (u, m)
    | Types.Adopt u ->
        observer.on_new_preference ~round:m u;
        v := u
    | Types.Vacillate _ ->
        let u =
          match ctx.coin with
          | None -> Dsim.Rng.bool ctx.rng
          | Some coin -> Common_coin.flip coin ~local_rng:ctx.rng ~round:m
        in
        observer.on_new_preference ~round:m u;
        v := u)
  done;
  match !decision with Some d -> d | None -> assert false
