(** A weak common coin — the "better reconciliator" ablation.

    Ben-Or's local coin flips give exponential expected round complexity
    against a splitting adversary; the classic remedy (Rabin) is a shared
    coin: in each round, with probability at least [agreement] every
    processor observes the {e same} uniformly random bit, and otherwise
    each flips locally.

    The real construction needs a dealer or cryptographic setup the paper
    does not provide, so this module {e simulates} the object's interface
    contract (see DESIGN.md substitutions): a per-round draw decides —
    deterministically from the simulation seed — whether the round's coin
    is common, and the per-processor [flip] answers accordingly.  With
    [agreement = 1.0] it is a perfect common coin; with [agreement = 0.0]
    it degenerates to Ben-Or's local coins. *)

type t

val create : rng:Dsim.Rng.t -> agreement:float -> t
(** [create ~rng ~agreement] makes a coin shared by all processors of one
    consensus instance.  [rng] should be split off the engine seed;
    [agreement] is clamped to [0..1]. *)

val agreement : t -> float

val flip : t -> local_rng:Dsim.Rng.t -> round:int -> bool
(** The bit processor with private stream [local_rng] sees in [round].
    All calls for the same round agree when the round drew common. *)

val common_rounds : t -> int
(** How many rounds drew a common coin so far (for experiment reporting). *)
