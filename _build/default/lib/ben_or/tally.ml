type phase_tally = {
  seen1 : bool array;
  seen2 : bool array;
  mutable step1 : int;
  mutable reports_true : int;
  mutable reports_false : int;
  mutable step2 : int;
  mutable ratify_true : int;
  mutable ratify_false : int;
}

type t = { n : int; phases : (int, phase_tally) Hashtbl.t }

let phase_tally t phase =
  match Hashtbl.find_opt t.phases phase with
  | Some p -> p
  | None ->
      let p =
        {
          seen1 = Array.make t.n false;
          seen2 = Array.make t.n false;
          step1 = 0;
          reports_true = 0;
          reports_false = 0;
          step2 = 0;
          ratify_true = 0;
          ratify_false = 0;
        }
      in
      Hashtbl.replace t.phases phase p;
      p

let ingest t env =
  let src = env.Netsim.Async_net.src in
  match env.Netsim.Async_net.payload with
  | Messages.Report { phase; value } ->
      let p = phase_tally t phase in
      if not p.seen1.(src) then begin
        p.seen1.(src) <- true;
        p.step1 <- p.step1 + 1;
        if value then p.reports_true <- p.reports_true + 1
        else p.reports_false <- p.reports_false + 1
      end
  | Messages.Ratify { phase; value } ->
      let p = phase_tally t phase in
      if not p.seen2.(src) then begin
        p.seen2.(src) <- true;
        p.step2 <- p.step2 + 1;
        if value then p.ratify_true <- p.ratify_true + 1
        else p.ratify_false <- p.ratify_false + 1
      end
  | Messages.Question { phase } ->
      let p = phase_tally t phase in
      if not p.seen2.(src) then begin
        p.seen2.(src) <- true;
        p.step2 <- p.step2 + 1
      end

let attach net ~me =
  let t = { n = Netsim.Async_net.n net; phases = Hashtbl.create 32 } in
  Netsim.Async_net.set_handler net me (ingest t);
  t

let step1_senders t ~phase = (phase_tally t phase).step1

let reports_for t ~phase value =
  let p = phase_tally t phase in
  if value then p.reports_true else p.reports_false

let step2_senders t ~phase = (phase_tally t phase).step2

let ratifies_for t ~phase value =
  let p = phase_tally t phase in
  if value then p.ratify_true else p.ratify_false

let forget_below t ~phase =
  Hashtbl.iter
    (fun ph _ -> if ph < phase then Hashtbl.remove t.phases ph)
    (Hashtbl.copy t.phases)
