type round_coin = Common of bool | Independent

type t = {
  dealer : Dsim.Rng.t;
  agreement : float;
  rounds : (int, round_coin) Hashtbl.t;
  mutable commons : int;
}

let create ~rng ~agreement =
  let agreement = Float.max 0.0 (Float.min 1.0 agreement) in
  { dealer = rng; agreement; rounds = Hashtbl.create 16; commons = 0 }

let agreement t = t.agreement

(* Rounds may be queried out of order (processors run at different
   speeds), so each round's nature is fixed on first touch. *)
let round_coin t round =
  match Hashtbl.find_opt t.rounds round with
  | Some c -> c
  | None ->
      let c =
        if Dsim.Rng.float t.dealer 1.0 < t.agreement then begin
          t.commons <- t.commons + 1;
          Common (Dsim.Rng.bool t.dealer)
        end
        else Independent
      in
      Hashtbl.replace t.rounds round c;
      c

let flip t ~local_rng ~round =
  match round_coin t round with
  | Common b -> b
  | Independent -> Dsim.Rng.bool local_rng

let common_rounds t = t.commons
