(** Incremental per-phase quorum counters for Ben-Or.

    Installed as the node's delivery handler, so every count is O(1) to
    read no matter how many messages the run has carried — scanning the
    inbox on every scheduler poll would make long executions quadratic.

    All counts are over {e distinct senders} (first message from a sender
    for a given phase/step wins), which keeps the protocol correct under
    message duplication. *)

type t

val attach : Messages.t Netsim.Async_net.t -> me:int -> t
(** Create the tally and install it as node [me]'s delivery handler. *)

val step1_senders : t -> phase:int -> int
(** Distinct senders of ⟨1, ∗⟩ for the phase. *)

val reports_for : t -> phase:int -> bool -> int
(** Distinct senders whose first phase report carried this value. *)

val step2_senders : t -> phase:int -> int
(** Distinct senders of ⟨2, ∗⟩ for the phase. *)

val ratifies_for : t -> phase:int -> bool -> int
(** Distinct senders whose first phase-2 message was ⟨2, v, ratify⟩ with
    this value. *)

val forget_below : t -> phase:int -> unit
(** Drop counters for phases below the given one (memory hygiene on very
    long runs; counters for finished phases are never read again). *)
