lib/ben_or/tally.mli: Messages Netsim
