lib/ben_or/messages.mli: Format
