lib/ben_or/ac_variant.mli: Common_coin Consensus Dsim Netsim
