lib/ben_or/runner.mli: Consensus Dsim Messages Netsim
