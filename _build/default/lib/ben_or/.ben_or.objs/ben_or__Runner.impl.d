lib/ben_or/runner.ml: Array Bool Common_coin Consensus Dsim Fun List Messages Netsim Option Printf Protocol
