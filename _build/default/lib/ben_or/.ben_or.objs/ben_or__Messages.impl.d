lib/ben_or/messages.ml: Format
