lib/ben_or/common_coin.mli: Dsim
