lib/ben_or/protocol.ml: Common_coin Consensus Dsim Messages Netsim Tally
