lib/ben_or/ac_variant.ml: Array Common_coin Consensus Dsim Hashtbl Netsim Option
