lib/ben_or/tally.ml: Array Hashtbl Messages Netsim
