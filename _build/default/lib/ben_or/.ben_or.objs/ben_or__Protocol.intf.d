lib/ben_or/protocol.mli: Common_coin Consensus Dsim Messages Netsim Tally
