lib/ben_or/common_coin.ml: Dsim Float Hashtbl
