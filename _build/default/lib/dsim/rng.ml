type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let copy t = { state = t.state }

(* splitmix64 output function (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits avoids modulo bias. *)
    let mask = 1 lsl 30 - 1 in
    let rec draw () =
      let r = bits t land mask in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end
  else begin
    let rec draw () =
      let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then draw () else v
    in
    draw ()
  end

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-18 else u in
  -.mean *. log u

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a
