(** Cancellable, resettable one-shot timers on top of {!Engine}.

    Raft-style protocols continually reset election timers; this module
    implements that cheaply with a generation counter, so stale scheduled
    events fall through without firing. *)

type t

val create : Engine.t -> (unit -> unit) -> t
(** [create engine f] makes an idle timer that runs [f] when it fires.
    [f] runs in plain scheduler context (not inside any process). *)

val arm : t -> delay:int -> unit
(** (Re)arm to fire [delay] units from now, replacing any pending firing. *)

val cancel : t -> unit
(** Disarm; a pending firing is dropped. *)

val is_armed : t -> bool
(** True if armed and not yet fired. *)
