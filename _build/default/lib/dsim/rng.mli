(** Deterministic pseudo-random number generation for simulations.

    The generator is splitmix64: tiny state, excellent statistical quality
    for simulation purposes, and — crucially — {e splittable}, so every
    process in a simulation can own an independent stream derived from the
    engine seed.  Identical seeds always reproduce identical simulations. *)

type t
(** A mutable generator. Not thread-safe; simulations are single-domain. *)

val create : int64 -> t
(** [create seed] makes a fresh generator.  Any seed is acceptable. *)

val copy : t -> t
(** [copy t] duplicates the current state (the copies then diverge). *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 30 uniform random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** A fair coin flip. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val exponential : t -> mean:float -> float
(** An exponentially distributed value with the given mean. *)

val pick : t -> 'a array -> 'a
(** A uniformly random element. @raise Invalid_argument on empty arrays. *)

val pick_list : t -> 'a list -> 'a
(** A uniformly random element. @raise Invalid_argument on empty lists. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** A uniformly random permutation of the list. *)
