lib/dsim/vec.mli:
