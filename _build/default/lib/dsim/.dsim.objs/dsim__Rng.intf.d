lib/dsim/rng.mli:
