lib/dsim/timer.mli: Engine
