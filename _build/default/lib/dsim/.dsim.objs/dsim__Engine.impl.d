lib/dsim/engine.ml: Effect Hashtbl Heap List Printexc Printf Rng Trace
