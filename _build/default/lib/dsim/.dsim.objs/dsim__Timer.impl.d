lib/dsim/timer.ml: Engine
