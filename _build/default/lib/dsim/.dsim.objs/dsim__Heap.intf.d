lib/dsim/heap.mli:
