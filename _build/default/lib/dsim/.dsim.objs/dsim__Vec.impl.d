lib/dsim/vec.ml: Array List Printf
