type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable generation : int;
  mutable armed : bool;
}

let create engine callback = { engine; callback; generation = 0; armed = false }

let arm t ~delay =
  t.generation <- t.generation + 1;
  t.armed <- true;
  let gen = t.generation in
  Engine.schedule t.engine ~delay (fun () ->
      if t.armed && t.generation = gen then begin
        t.armed <- false;
        t.callback ()
      end)

let cancel t =
  t.generation <- t.generation + 1;
  t.armed <- false

let is_armed t = t.armed
