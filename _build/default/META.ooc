description = ""
requires = "fmt ooc.dsim"
archive(byte) = "consensus.cma"
archive(native) = "consensus.cmxa"
plugin(byte) = "consensus.cma"
plugin(native) = "consensus.cmxs"
package "ben-or" (
  directory = "ben-or"
  description = ""
  requires = "fmt ooc ooc.dsim ooc.netsim"
  archive(byte) = "ben_or.cma"
  archive(native) = "ben_or.cmxa"
  plugin(byte) = "ben_or.cma"
  plugin(native) = "ben_or.cmxs"
)
package "dsim" (
  directory = "dsim"
  description = ""
  requires = "fmt"
  archive(byte) = "dsim.cma"
  archive(native) = "dsim.cmxa"
  plugin(byte) = "dsim.cma"
  plugin(native) = "dsim.cmxs"
)
package "netsim" (
  directory = "netsim"
  description = ""
  requires = "fmt ooc.dsim"
  archive(byte) = "netsim.cma"
  archive(native) = "netsim.cmxa"
  plugin(byte) = "netsim.cma"
  plugin(native) = "netsim.cmxs"
)
package "phase-king" (
  directory = "phase-king"
  description = ""
  requires = "fmt ooc ooc.dsim ooc.netsim"
  archive(byte) = "phase_king.cma"
  archive(native) = "phase_king.cmxa"
  plugin(byte) = "phase_king.cma"
  plugin(native) = "phase_king.cmxs"
)
package "raft" (
  directory = "raft"
  description = ""
  requires = "fmt ooc ooc.dsim ooc.netsim"
  archive(byte) = "raft.cma"
  archive(native) = "raft.cmxa"
  plugin(byte) = "raft.cma"
  plugin(native) = "raft.cmxs"
)
package "sharedmem" (
  directory = "sharedmem"
  description = ""
  requires = "fmt ooc ooc.dsim"
  archive(byte) = "sharedmem.cma"
  archive(native) = "sharedmem.cmxa"
  plugin(byte) = "sharedmem.cma"
  plugin(native) = "sharedmem.cmxs"
)
package "workload" (
  directory = "workload"
  description = ""
  requires =
  "fmt
   ooc
   ooc.ben-or
   ooc.dsim
   ooc.netsim
   ooc.phase-king
   ooc.raft
   ooc.sharedmem"
  archive(byte) = "workload.cma"
  archive(native) = "workload.cmxa"
  plugin(byte) = "workload.cma"
  plugin(native) = "workload.cmxs"
)