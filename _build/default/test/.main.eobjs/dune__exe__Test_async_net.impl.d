test/test_async_net.ml: Alcotest Dsim List Netsim Printf
