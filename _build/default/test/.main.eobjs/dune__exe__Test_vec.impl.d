test/test_vec.ml: Alcotest Dsim List QCheck QCheck_alcotest
