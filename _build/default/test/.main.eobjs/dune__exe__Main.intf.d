test/main.mli:
