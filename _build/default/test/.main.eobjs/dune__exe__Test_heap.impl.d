test/test_heap.ml: Alcotest Dsim List QCheck QCheck_alcotest
