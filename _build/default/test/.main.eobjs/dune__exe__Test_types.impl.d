test/test_types.ml: Alcotest Consensus Format Int
