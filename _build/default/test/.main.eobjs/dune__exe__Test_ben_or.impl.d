test/test_ben_or.ml: Alcotest Array Ben_or Dsim Int64 List Netsim Option Printf QCheck QCheck_alcotest
