test/test_raft.ml: Alcotest Array Int64 List Netsim Option Printf Raft
