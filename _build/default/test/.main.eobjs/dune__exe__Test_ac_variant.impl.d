test/test_ac_variant.ml: Alcotest Array Ben_or Bool Consensus Dsim Int64 List Netsim Option Printf QCheck QCheck_alcotest
