test/test_rng.ml: Alcotest Dsim List QCheck QCheck_alcotest
