test/test_sharedmem.ml: Alcotest Array Bool Consensus Dsim Int64 List Printf QCheck QCheck_alcotest Sharedmem
