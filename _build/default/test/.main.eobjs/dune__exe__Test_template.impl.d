test/test_template.ml: Alcotest Consensus List Printf
