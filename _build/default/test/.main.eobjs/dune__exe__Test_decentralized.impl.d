test/test_decentralized.ml: Alcotest Array Consensus Dsim Int64 List Netsim Printf QCheck QCheck_alcotest Raft
