test/test_tally.ml: Alcotest Ben_or Dsim Netsim Raft
