test/test_queen.ml: Alcotest Array Dsim Fun Int64 List Netsim Option Phase_king Printf QCheck QCheck_alcotest
