test/test_explore.ml: Alcotest Dsim List Sharedmem String
