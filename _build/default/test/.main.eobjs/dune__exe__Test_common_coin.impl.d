test/test_common_coin.ml: Alcotest Array Ben_or Dsim Int64 List Printf
