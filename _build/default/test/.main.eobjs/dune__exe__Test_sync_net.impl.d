test/test_sync_net.ml: Alcotest Array Dsim List Netsim Printf
