test/test_raft_consensus.ml: Alcotest Array Consensus Dsim Int64 List Option Printf QCheck QCheck_alcotest Raft
