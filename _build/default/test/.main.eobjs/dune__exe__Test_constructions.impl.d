test/test_constructions.ml: Alcotest Array Ben_or Consensus Dsim Format Int Int64 List Netsim QCheck QCheck_alcotest Sharedmem
