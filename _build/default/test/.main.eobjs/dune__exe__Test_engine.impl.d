test/test_engine.ml: Alcotest Buffer Dsim Fmt Format Fun List Printf QCheck QCheck_alcotest String
