test/test_monitor.ml: Alcotest Consensus List
