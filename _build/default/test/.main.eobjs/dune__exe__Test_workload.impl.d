test/test_workload.ml: Alcotest Array Astring_like Buffer Format List String Workload
