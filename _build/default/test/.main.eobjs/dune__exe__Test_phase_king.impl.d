test/test_phase_king.ml: Alcotest Array Dsim Fun Int64 List Netsim Option Phase_king Printf QCheck QCheck_alcotest
