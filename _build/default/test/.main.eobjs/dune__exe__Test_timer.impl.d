test/test_timer.ml: Alcotest Dsim Lazy List
