test/test_trace.ml: Alcotest Astring_like Dsim Format List
