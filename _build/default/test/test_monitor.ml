(* Tests for the property monitors: every check must catch its violation
   and stay silent on clean executions. *)

module M = Consensus.Monitor.Make (Consensus.Objects.Int_value)
open Consensus.Types

let check = Alcotest.check

let properties violations = List.map (fun v -> v.Consensus.Monitor.property) violations

let clean_round_passes () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_initial m ~pid:2 1;
  List.iter (fun pid -> M.record_output m ~round:1 ~pid (Commit 1)) [ 0; 1; 2 ];
  check (Alcotest.list Alcotest.string) "no violations" [] (properties (M.check_vac m))

let coherence_ac_catches_vacillate_next_to_commit () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Vacillate 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(adopt&commit)" (properties (M.check_vac m)))

let coherence_ac_catches_wrong_value () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(adopt&commit)" (properties (M.check_vac m)))

let coherence_ac_allows_matching_adopt () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let coherence_va_catches_mixed_adopts () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 0);
  check Alcotest.bool "flagged" true
    (List.mem "coherence(vacillate&adopt)" (properties (M.check_vac ~validity:false m)))

let coherence_va_allows_vacillate_anything () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Vacillate 0);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let coherence_va_only_without_commit () =
  (* Mixed adopt values next to a commit are already an A&C violation; the
     V&A rule itself only applies in commit-free rounds. *)
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  M.record_output m ~round:1 ~pid:2 (Adopt 1);
  check
    (Alcotest.list Alcotest.string)
    "clean" []
    (properties (M.check_vac ~validity:false m))

let convergence_catches_non_commit () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_output m ~round:1 ~pid:0 (Commit 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check Alcotest.bool "flagged" true
    (List.mem "convergence" (properties (M.check_vac m)))

let convergence_ignores_mixed_inputs () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 0;
  M.record_output m ~round:1 ~pid:0 (Adopt 1);
  M.record_output m ~round:1 ~pid:1 (Adopt 1);
  check (Alcotest.list Alcotest.string) "clean" [] (properties (M.check_vac m))

let validity_catches_invented_value () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 1;
  M.record_output m ~round:1 ~pid:0 (Vacillate 9);
  check Alcotest.bool "flagged" true
    (List.mem "validity" (properties (M.check_vac m)))

let validity_can_be_disabled () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_output m ~round:1 ~pid:0 (Vacillate 9);
  check Alcotest.bool "vacillate 9 is the only problem" true
    (List.for_all
       (fun p -> p <> "validity")
       (properties (M.check_vac ~validity:false m)))

let ac_shape_rejects_vacillate () =
  let m = M.create () in
  M.record_output m ~round:1 ~pid:0 (Vacillate 1);
  check Alcotest.bool "flagged" true
    (List.mem "ac-shape" (properties (M.check_ac ~validity:false m)))

let consensus_agreement () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 2;
  M.record_decision m ~round:1 ~pid:0 1;
  M.record_decision m ~round:2 ~pid:1 2;
  check Alcotest.bool "disagreement flagged" true
    (List.mem "agreement" (properties (M.check_consensus m)))

let consensus_validity () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_decision m ~round:1 ~pid:0 5;
  check Alcotest.bool "invalid decision flagged" true
    (List.mem "consensus-validity" (properties (M.check_consensus m)))

let consensus_clean () =
  let m = M.create () in
  M.record_initial m ~pid:0 1;
  M.record_initial m ~pid:1 2;
  M.record_decision m ~round:3 ~pid:0 2;
  M.record_decision m ~round:3 ~pid:1 2;
  check (Alcotest.list Alcotest.string) "clean" [] (properties (M.check_consensus m))

let observer_plumbs_into_rounds () =
  (* Two processors with split inputs (a unanimous round would trip the
     convergence check on anything but a commit). *)
  let m = M.create () in
  let obs4 = M.observer m ~pid:4 and obs5 = M.observer m ~pid:5 in
  M.record_initial m ~pid:4 1;
  M.record_initial m ~pid:5 2;
  obs4.Consensus.Template.on_detect ~round:1 (Adopt 1);
  obs4.Consensus.Template.on_new_preference ~round:1 1;
  obs5.Consensus.Template.on_detect ~round:1 (Vacillate 2);
  obs5.Consensus.Template.on_new_preference ~round:1 1;
  obs4.Consensus.Template.on_detect ~round:2 (Commit 1);
  obs4.Consensus.Template.on_decide ~round:2 1;
  obs5.Consensus.Template.on_detect ~round:2 (Commit 1);
  obs5.Consensus.Template.on_decide ~round:2 1;
  check (Alcotest.list Alcotest.int) "two rounds recorded" [ 1; 2 ] (M.rounds m);
  check Alcotest.int "decisions recorded" 2 (List.length (M.decisions m));
  check (Alcotest.list Alcotest.string) "clean run" []
    (properties (M.check_vac m @ M.check_consensus m))

let suite =
  [
    Alcotest.test_case "clean round passes" `Quick clean_round_passes;
    Alcotest.test_case "A&C: vacillate next to commit" `Quick
      coherence_ac_catches_vacillate_next_to_commit;
    Alcotest.test_case "A&C: wrong value" `Quick coherence_ac_catches_wrong_value;
    Alcotest.test_case "A&C: matching adopt ok" `Quick coherence_ac_allows_matching_adopt;
    Alcotest.test_case "V&A: mixed adopts" `Quick coherence_va_catches_mixed_adopts;
    Alcotest.test_case "V&A: vacillate is free" `Quick coherence_va_allows_vacillate_anything;
    Alcotest.test_case "V&A scoped to commit-free rounds" `Quick
      coherence_va_only_without_commit;
    Alcotest.test_case "convergence violation" `Quick convergence_catches_non_commit;
    Alcotest.test_case "convergence scope" `Quick convergence_ignores_mixed_inputs;
    Alcotest.test_case "validity violation" `Quick validity_catches_invented_value;
    Alcotest.test_case "validity opt-out" `Quick validity_can_be_disabled;
    Alcotest.test_case "AC shape" `Quick ac_shape_rejects_vacillate;
    Alcotest.test_case "consensus agreement" `Quick consensus_agreement;
    Alcotest.test_case "consensus validity" `Quick consensus_validity;
    Alcotest.test_case "consensus clean" `Quick consensus_clean;
    Alcotest.test_case "observer plumbing" `Quick observer_plumbs_into_rounds;
  ]
