(* Tests for Ben-Or rebuilt through the AC template (the conciliator
   validity-machinery control). *)

module AV = Ben_or.Ac_variant
module M = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

type result = {
  decisions : (int * bool * int) list;
  violations : Consensus.Monitor.violation list;
  quiescent : bool;
  messages : int;
}

let run ?(n = 8) ?(seed = 1) ?(crashes = []) ?coin_agreement inputs =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:1_000 () in
  let net = Netsim.Async_net.create eng ~n ~retain_inbox:false () in
  let t = (n - 1) / 2 in
  let coin =
    Option.map
      (fun agreement ->
        Ben_or.Common_coin.create ~rng:(Dsim.Rng.split (Dsim.Engine.rng eng)) ~agreement)
      coin_agreement
  in
  let monitor = M.create () in
  let decisions = ref [] in
  let pids =
    Array.init n (fun i ->
        M.record_initial monitor ~pid:i inputs.(i);
        Dsim.Engine.spawn eng (fun ectx ->
            let ctx =
              AV.make_ctx ?coin ~net ~me:i ~faults:t ~rng:ectx.Dsim.Engine.rng ()
            in
            let observer = M.observer monitor ~pid:i in
            let v, m =
              AV.Consensus_ac.consensus ~max_rounds:3000 ~observer ctx inputs.(i)
            in
            decisions := (i, v, m) :: !decisions))
  in
  List.iter
    (fun (delay, victim) ->
      Dsim.Engine.schedule eng ~delay (fun () ->
          Netsim.Async_net.crash net victim;
          Dsim.Engine.kill eng pids.(victim)))
    crashes;
  let outcome = Dsim.Engine.run eng in
  {
    decisions = List.rev !decisions;
    violations = M.check_ac monitor @ M.check_consensus monitor;
    quiescent = (outcome = Dsim.Engine.Quiescent);
    messages = Netsim.Async_net.messages_sent net;
  }

let agree r =
  match r.decisions with
  | [] -> false
  | (_, v0, _) :: rest -> List.for_all (fun (_, v, _) -> Bool.equal v v0) rest

let unanimous_commits_round_one () =
  let r = run (Array.make 8 true) in
  check Alcotest.bool "quiescent" true r.quiescent;
  check Alcotest.int "all decided" 8 (List.length r.decisions);
  List.iter
    (fun (_, v, m) ->
      check Alcotest.bool "decides true" true v;
      check Alcotest.int "round 1" 1 m)
    r.decisions;
  check Alcotest.int "clean" 0 (List.length r.violations)

let split_inputs_agree () =
  for seed = 1 to 10 do
    let r = run ~seed (Array.init 8 (fun i -> i mod 2 = 0)) in
    check Alcotest.bool (Printf.sprintf "seed %d agrees" seed) true (agree r);
    check Alcotest.int "clean" 0 (List.length r.violations)
  done

let crash_tolerance () =
  for seed = 1 to 10 do
    let r =
      run ~seed ~crashes:[ (7, 0); (19, 2); (31, 4) ]
        (Array.init 8 (fun i -> i mod 2 = 0))
    in
    check Alcotest.bool (Printf.sprintf "seed %d quiescent" seed) true r.quiescent;
    check Alcotest.bool "survivors agree" true (agree r);
    check Alcotest.bool "at least survivors decided" true (List.length r.decisions >= 5);
    check Alcotest.int "clean" 0 (List.length r.violations)
  done

let three_broadcasts_per_round () =
  check Alcotest.int "machinery constant" 3 AV.broadcasts_per_round;
  (* Unanimous single-round run: n proposes + n flags + n suggests
     (parting gift) + n x round-2 gifts (3 broadcasts each). *)
  let r = run (Array.make 4 true) ~n:4 in
  check Alcotest.int "message accounting" (4 * 4 * 6) r.messages

let common_coin_compatible () =
  for seed = 1 to 5 do
    let r = run ~seed ~coin_agreement:1.0 (Array.init 8 (fun i -> i mod 2 = 0)) in
    check Alcotest.bool "agrees" true (agree r);
    check Alcotest.int "clean" 0 (List.length r.violations)
  done

let rejects_bad_config () =
  let eng = Dsim.Engine.create () in
  let net = Netsim.Async_net.create eng ~n:4 () in
  Alcotest.check_raises "2t >= n" (Invalid_argument "Ac_variant.make_ctx: requires 2t < n")
    (fun () ->
      ignore
        (AV.make_ctx ~net ~me:0 ~faults:2 ~rng:(Dsim.Rng.create 1L) () : AV.ctx))

let prop_safety =
  QCheck.Test.make ~name:"AC-template Ben-Or safety over seeds/sizes" ~count:40
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 9))
    (fun (seed, n) ->
      let inputs = Array.init n (fun i -> (seed + i) mod 2 = 0) in
      let r = run ~n ~seed inputs in
      r.quiescent && agree r && r.violations = [] && List.length r.decisions = n)

let suite =
  [
    Alcotest.test_case "unanimous commits round 1" `Quick unanimous_commits_round_one;
    Alcotest.test_case "split inputs agree" `Quick split_inputs_agree;
    Alcotest.test_case "crash tolerance" `Quick crash_tolerance;
    Alcotest.test_case "three broadcasts per round" `Quick three_broadcasts_per_round;
    Alcotest.test_case "common coin compatible" `Quick common_coin_compatible;
    Alcotest.test_case "rejects bad config" `Quick rejects_bad_config;
    qtest prop_safety;
  ]
