(* Tests for the weak common coin and its effect as a reconciliator. *)

let check = Alcotest.check

let perfect_coin_agrees () =
  let rng = Dsim.Rng.create 5L in
  let coin = Ben_or.Common_coin.create ~rng ~agreement:1.0 in
  for round = 1 to 20 do
    let a = Ben_or.Common_coin.flip coin ~local_rng:(Dsim.Rng.create 1L) ~round in
    let b = Ben_or.Common_coin.flip coin ~local_rng:(Dsim.Rng.create 2L) ~round in
    let c = Ben_or.Common_coin.flip coin ~local_rng:(Dsim.Rng.create 3L) ~round in
    check Alcotest.bool (Printf.sprintf "round %d all equal" round) true
      (a = b && b = c)
  done;
  check Alcotest.int "every round common" 20 (Ben_or.Common_coin.common_rounds coin)

let zero_agreement_is_local () =
  let rng = Dsim.Rng.create 5L in
  let coin = Ben_or.Common_coin.create ~rng ~agreement:0.0 in
  for round = 1 to 20 do
    ignore (Ben_or.Common_coin.flip coin ~local_rng:(Dsim.Rng.create 9L) ~round : bool)
  done;
  check Alcotest.int "no common rounds" 0 (Ben_or.Common_coin.common_rounds coin)

let round_nature_is_stable () =
  (* Asking twice for the same round must not re-roll. *)
  let rng = Dsim.Rng.create 7L in
  let coin = Ben_or.Common_coin.create ~rng ~agreement:1.0 in
  let local = Dsim.Rng.create 1L in
  let a = Ben_or.Common_coin.flip coin ~local_rng:local ~round:3 in
  let b = Ben_or.Common_coin.flip coin ~local_rng:local ~round:3 in
  check Alcotest.bool "stable" true (a = b)

let agreement_clamped () =
  let rng = Dsim.Rng.create 1L in
  check (Alcotest.float 1e-9) "above 1" 1.0
    (Ben_or.Common_coin.agreement (Ben_or.Common_coin.create ~rng ~agreement:7.0));
  check (Alcotest.float 1e-9) "below 0" 0.0
    (Ben_or.Common_coin.agreement (Ben_or.Common_coin.create ~rng ~agreement:(-1.0)))

let common_coin_collapses_rounds () =
  (* The E2b shape, as a test: with even-split inputs at n = 16, a perfect
     common coin decides in a handful of rounds where local coins routinely
     need dozens. *)
  let run coin seed =
    let n = 16 in
    let cfg =
      {
        (Ben_or.Runner.default_config ~n ~inputs:(Array.init n (fun i -> i mod 2 = 0)))
        with
        seed = Int64.of_int seed;
        common_coin = coin;
        max_rounds = 3000;
      }
    in
    let r = Ben_or.Runner.run cfg in
    check Alcotest.bool "healthy" true
      (r.Ben_or.Runner.violations = [] && r.Ben_or.Runner.process_failures = []);
    r.Ben_or.Runner.max_decision_round
  in
  let local = List.init 10 (fun s -> run None (s + 1)) in
  let common = List.init 10 (fun s -> run (Some 1.0) (s + 1)) in
  let sum = List.fold_left ( + ) 0 in
  check Alcotest.bool "common coin at most 4 rounds" true
    (List.for_all (fun r -> r <= 4) common);
  check Alcotest.bool "common strictly faster on average" true
    (sum common * 2 < sum local)

let safety_unchanged_with_coin () =
  for seed = 1 to 10 do
    let n = 8 in
    let cfg =
      {
        (Ben_or.Runner.default_config ~n ~inputs:(Array.init n (fun i -> i mod 2 = 0)))
        with
        seed = Int64.of_int seed;
        common_coin = Some 0.5;
        crash_schedule = [ (10, 0); (20, 2) ];
      }
    in
    let r = Ben_or.Runner.run cfg in
    check Alcotest.bool (Printf.sprintf "seed %d healthy" seed) true
      (r.Ben_or.Runner.violations = []
      && Ben_or.Runner.all_decided_same r
           ~expected_live:(n - List.length r.Ben_or.Runner.crashed))
  done

let suite =
  [
    Alcotest.test_case "perfect coin agrees" `Quick perfect_coin_agrees;
    Alcotest.test_case "zero agreement is local" `Quick zero_agreement_is_local;
    Alcotest.test_case "round nature stable" `Quick round_nature_is_stable;
    Alcotest.test_case "agreement clamped" `Quick agreement_clamped;
    Alcotest.test_case "common coin collapses rounds" `Slow common_coin_collapses_rounds;
    Alcotest.test_case "safety unchanged with coin" `Quick safety_unchanged_with_coin;
  ]
