(* Tests for Ben-Or: unit behaviour, whole-system properties under crash
   faults and adversarial delivery, and the decomposed/monolithic
   equivalence. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run ?(n = 8) ?(seed = 1) ?(crashes = []) ?(mode = Ben_or.Runner.Decomposed)
    ?(policy = fun _ -> Netsim.Async_net.Deliver) ?max_rounds inputs =
  let cfg = Ben_or.Runner.default_config ~n ~inputs in
  let cfg =
    {
      cfg with
      seed = Int64.of_int seed;
      crash_schedule = crashes;
      mode;
      policy;
      max_rounds = Option.value ~default:cfg.Ben_or.Runner.max_rounds max_rounds;
    }
  in
  Ben_or.Runner.run cfg

let is_quiescent r =
  match r.Ben_or.Runner.engine_outcome with
  | Dsim.Engine.Quiescent -> true
  | Dsim.Engine.Deadlock _ | Dsim.Engine.Time_limit | Dsim.Engine.Event_limit -> false

let healthy ~live r =
  r.Ben_or.Runner.violations = []
  && r.Ben_or.Runner.process_failures = []
  && is_quiescent r
  && Ben_or.Runner.all_decided_same r ~expected_live:live

let unanimous_commits_round_one () =
  let r = run (Array.make 8 true) in
  check Alcotest.bool "healthy" true (healthy ~live:8 r);
  check Alcotest.int "single round" 1 r.Ben_or.Runner.max_decision_round;
  List.iter
    (fun (_, v, _) -> check Alcotest.bool "decides the unanimous input" true v)
    r.Ben_or.Runner.decisions

let unanimous_false_decides_false () =
  let r = run (Array.make 5 false) ~n:5 in
  List.iter
    (fun (_, v, _) -> check Alcotest.bool "validity" false v)
    r.Ben_or.Runner.decisions

let split_inputs_still_agree () =
  let r = run (Array.init 8 (fun i -> i mod 2 = 0)) ~seed:5 in
  check Alcotest.bool "healthy" true (healthy ~live:8 r)

let survives_max_crashes () =
  let n = 9 in
  let t = 4 in
  let crashes = List.init t (fun k -> (5 + (11 * k), 2 * k)) in
  let r = run ~n ~crashes (Array.init n (fun i -> i mod 2 = 0)) in
  check Alcotest.int "all t crashed" t (List.length r.Ben_or.Runner.crashed);
  check Alcotest.bool "healthy with t crashes" true (healthy ~live:(n - t) r)

let deciders_do_not_deadlock_survivors () =
  (* The parting-gift regression test: crash t processors AND let early
     deciders halt; survivors must still finish. *)
  let n = 4 in
  let crashes = [ (3, 0) ] in
  let failures = ref 0 in
  for seed = 1 to 30 do
    let r = run ~n ~seed ~crashes (Array.init n (fun i -> i mod 2 = 0)) in
    if not (healthy ~live:3 r) then incr failures
  done;
  check Alcotest.int "no deadlocked runs" 0 !failures

let message_duplication_is_harmless () =
  let policy _ = Netsim.Async_net.Duplicate 2 in
  let r = run ~policy ~seed:3 (Array.init 8 (fun i -> i mod 2 = 0)) in
  check Alcotest.bool "healthy under duplication" true (healthy ~live:8 r)

let extreme_delay_variance () =
  let n = 6 in
  let cfg =
    {
      (Ben_or.Runner.default_config ~n ~inputs:(Array.init n (fun i -> i mod 2 = 0)))
      with
      latency = Netsim.Latency.Exponential { mean = 50.0; cap = 5_000 };
      seed = 11L;
    }
  in
  let r = Ben_or.Runner.run cfg in
  check Alcotest.bool "healthy under heavy-tailed latency" true (healthy ~live:n r)

let decomposed_equals_monolithic () =
  for seed = 1 to 15 do
    let inputs = Array.init 8 (fun i -> i mod 2 = 0) in
    let rd = run ~seed ~mode:Ben_or.Runner.Decomposed inputs in
    let rm = run ~seed ~mode:Ben_or.Runner.Monolithic inputs in
    check Alcotest.bool
      (Printf.sprintf "seed %d identical decisions" seed)
      true
      (rd.Ben_or.Runner.decisions = rm.Ben_or.Runner.decisions);
    check Alcotest.int
      (Printf.sprintf "seed %d identical message counts" seed)
      rd.Ben_or.Runner.messages_sent rm.Ben_or.Runner.messages_sent
  done

let deterministic_replay () =
  let inputs = Array.init 8 (fun i -> i mod 2 = 0) in
  let r1 = run ~seed:7 inputs and r2 = run ~seed:7 inputs in
  check Alcotest.bool "identical decisions" true
    (r1.Ben_or.Runner.decisions = r2.Ben_or.Runner.decisions);
  check Alcotest.int "identical virtual time" r1.Ben_or.Runner.virtual_time
    r2.Ben_or.Runner.virtual_time

let rejects_bad_configs () =
  Alcotest.check_raises "t too large" (Invalid_argument "Ben_or.Runner.run: requires 2t < n")
    (fun () ->
      let cfg = Ben_or.Runner.default_config ~n:4 ~inputs:(Array.make 4 true) in
      ignore (Ben_or.Runner.run { cfg with faults = 2 } : Ben_or.Runner.report));
  Alcotest.check_raises "inputs length"
    (Invalid_argument "Ben_or.Runner.run: inputs length must equal n") (fun () ->
      ignore
        (Ben_or.Runner.run (Ben_or.Runner.default_config ~n:4 ~inputs:(Array.make 3 true))
        : Ben_or.Runner.report))

let prop_safety_under_random_faults =
  QCheck.Test.make ~name:"Ben-Or safety: random seeds, sizes, crash patterns"
    ~count:60
    QCheck.(triple (int_range 1 1_000_000) (int_range 2 10) (int_range 0 100))
    (fun (seed, n, crash_salt) ->
      let t = (n - 1) / 2 in
      let crash_count = crash_salt mod (t + 1) in
      let crashes = List.init crash_count (fun k -> (5 + (7 * k), (crash_salt + k) mod n)) in
      let inputs = Array.init n (fun i -> (seed + i) mod 2 = 0) in
      let r = run ~n ~seed ~crashes ~max_rounds:3000 inputs in
      let live = n - List.length r.Ben_or.Runner.crashed in
      healthy ~live r)

let prop_vac_guarantees_every_round =
  QCheck.Test.make ~name:"Ben-Or VAC object guarantees across schedules" ~count:60
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 9))
    (fun (seed, n) ->
      let inputs = Array.init n (fun i -> i mod 2 = 0) in
      let r = run ~n ~seed ~max_rounds:3000 inputs in
      r.Ben_or.Runner.violations = [])

let suite =
  [
    Alcotest.test_case "unanimous commits in round 1" `Quick unanimous_commits_round_one;
    Alcotest.test_case "unanimous false decides false" `Quick unanimous_false_decides_false;
    Alcotest.test_case "split inputs agree" `Quick split_inputs_still_agree;
    Alcotest.test_case "survives t crashes" `Quick survives_max_crashes;
    Alcotest.test_case "deciders don't deadlock survivors" `Quick
      deciders_do_not_deadlock_survivors;
    Alcotest.test_case "duplication harmless" `Quick message_duplication_is_harmless;
    Alcotest.test_case "heavy-tailed latency" `Quick extreme_delay_variance;
    Alcotest.test_case "decomposed = monolithic" `Quick decomposed_equals_monolithic;
    Alcotest.test_case "deterministic replay" `Quick deterministic_replay;
    Alcotest.test_case "rejects bad configs" `Quick rejects_bad_configs;
    qtest prop_safety_under_random_faults;
    qtest prop_vac_guarantees_every_round;
  ]
