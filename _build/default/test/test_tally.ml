(* Tests for the incremental quorum tallies (Ben-Or and the decentralized
   variant), the message pretty-printers, and the latency models. *)

module Engine = Dsim.Engine
module Net = Netsim.Async_net

let check = Alcotest.check

(* --- Ben-Or tally ------------------------------------------------------- *)

let benor_net () =
  let e = Engine.create ~seed:2L () in
  let net : Ben_or.Messages.t Net.t =
    Net.create e ~n:4 ~latency:(Netsim.Latency.Fixed 1) ~retain_inbox:false ()
  in
  (e, net)

let tally_counts_by_phase () =
  let e, net = benor_net () in
  let t = Ben_or.Tally.attach net ~me:0 in
  Net.send net ~src:1 ~dst:0 (Ben_or.Messages.Report { phase = 1; value = true });
  Net.send net ~src:2 ~dst:0 (Ben_or.Messages.Report { phase = 1; value = false });
  Net.send net ~src:3 ~dst:0 (Ben_or.Messages.Report { phase = 2; value = true });
  Net.send net ~src:1 ~dst:0 (Ben_or.Messages.Ratify { phase = 1; value = true });
  Net.send net ~src:2 ~dst:0 (Ben_or.Messages.Question { phase = 1 });
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "phase 1 reporters" 2 (Ben_or.Tally.step1_senders t ~phase:1);
  check Alcotest.int "phase 2 reporters" 1 (Ben_or.Tally.step1_senders t ~phase:2);
  check Alcotest.int "true reports" 1 (Ben_or.Tally.reports_for t ~phase:1 true);
  check Alcotest.int "false reports" 1 (Ben_or.Tally.reports_for t ~phase:1 false);
  check Alcotest.int "step2 senders" 2 (Ben_or.Tally.step2_senders t ~phase:1);
  check Alcotest.int "ratify true" 1 (Ben_or.Tally.ratifies_for t ~phase:1 true);
  check Alcotest.int "ratify false" 0 (Ben_or.Tally.ratifies_for t ~phase:1 false)

let tally_dedups_senders () =
  let e, net = benor_net () in
  let t = Ben_or.Tally.attach net ~me:0 in
  for _ = 1 to 5 do
    Net.send net ~src:1 ~dst:0 (Ben_or.Messages.Report { phase = 1; value = true })
  done;
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "one distinct sender" 1 (Ben_or.Tally.step1_senders t ~phase:1);
  check Alcotest.int "one true report" 1 (Ben_or.Tally.reports_for t ~phase:1 true)

let tally_forget_below () =
  let e, net = benor_net () in
  let t = Ben_or.Tally.attach net ~me:0 in
  Net.send net ~src:1 ~dst:0 (Ben_or.Messages.Report { phase = 1; value = true });
  Net.send net ~src:1 ~dst:0 (Ben_or.Messages.Report { phase = 5; value = true });
  ignore (Engine.run e : Engine.outcome);
  Ben_or.Tally.forget_below t ~phase:5;
  check Alcotest.int "old phase dropped" 0 (Ben_or.Tally.step1_senders t ~phase:1);
  check Alcotest.int "current phase kept" 1 (Ben_or.Tally.step1_senders t ~phase:5)

(* --- decentralized tally ------------------------------------------------ *)

let dec_net () =
  let e = Engine.create ~seed:3L () in
  let net : Raft.Decentralized_msg.t Net.t =
    Net.create e ~n:5 ~latency:(Netsim.Latency.Fixed 1) ~retain_inbox:false ()
  in
  (e, net)

let dec_tally_majority_and_order () =
  let e, net = dec_net () in
  let t = Raft.Dec_tally.attach net ~me:0 in
  Engine.schedule e ~delay:0 (fun () ->
      Net.send net ~src:3 ~dst:0 (Raft.Decentralized_msg.Propose { phase = 1; value = 9 }));
  Engine.schedule e ~delay:5 (fun () ->
      Net.send net ~src:1 ~dst:0 (Raft.Decentralized_msg.Propose { phase = 1; value = 7 });
      Net.send net ~src:2 ~dst:0 (Raft.Decentralized_msg.Propose { phase = 1; value = 7 });
      Net.send net ~src:4 ~dst:0 (Raft.Decentralized_msg.Propose { phase = 1; value = 7 }));
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "proposers" 4 (Raft.Dec_tally.proposers t ~phase:1);
  check (Alcotest.option Alcotest.int) "majority of n=5" (Some 7)
    (Raft.Dec_tally.majority_value t ~phase:1 ~n:5);
  (match Raft.Dec_tally.proposals_in_arrival_order t ~phase:1 with
  | (first_src, first_v) :: _ ->
      check Alcotest.int "earliest sender first" 3 first_src;
      check Alcotest.int "earliest value" 9 first_v
  | [] -> Alcotest.fail "no proposals");
  check Alcotest.int "no seconds yet" 0 (Raft.Dec_tally.second_senders t ~phase:1)

let dec_tally_ratifications () =
  let e, net = dec_net () in
  let t = Raft.Dec_tally.attach net ~me:0 in
  Net.send net ~src:1 ~dst:0 (Raft.Decentralized_msg.Second { phase = 2; ratify = Some 4 });
  Net.send net ~src:2 ~dst:0 (Raft.Decentralized_msg.Second { phase = 2; ratify = Some 4 });
  Net.send net ~src:3 ~dst:0 (Raft.Decentralized_msg.Second { phase = 2; ratify = None });
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "second senders" 3 (Raft.Dec_tally.second_senders t ~phase:2);
  check Alcotest.int "ratifies for 4" 2 (Raft.Dec_tally.ratifies_for t ~phase:2 4);
  check (Alcotest.list Alcotest.int) "ratified values" [ 4 ]
    (Raft.Dec_tally.ratified_values t ~phase:2)

(* --- message pretty-printers -------------------------------------------- *)

let benor_message_pp () =
  let s m = Ben_or.Messages.to_string m in
  check Alcotest.string "report" "<1, true>@3"
    (s (Ben_or.Messages.Report { phase = 3; value = true }));
  check Alcotest.string "ratify" "<2, false, ratify>@1"
    (s (Ben_or.Messages.Ratify { phase = 1; value = false }));
  check Alcotest.string "question" "<2, ?>@2" (s (Ben_or.Messages.Question { phase = 2 }))

let benor_message_predicates () =
  check Alcotest.int "phase accessor" 4
    (Ben_or.Messages.phase (Ben_or.Messages.Question { phase = 4 }));
  check Alcotest.bool "step1 match" true
    (Ben_or.Messages.is_step1 ~phase:2 (Ben_or.Messages.Report { phase = 2; value = true }));
  check Alcotest.bool "step1 wrong phase" false
    (Ben_or.Messages.is_step1 ~phase:2 (Ben_or.Messages.Report { phase = 3; value = true }));
  check Alcotest.bool "step2 matches ratify" true
    (Ben_or.Messages.is_step2 ~phase:1 (Ben_or.Messages.Ratify { phase = 1; value = true }));
  check Alcotest.bool "step2 matches question" true
    (Ben_or.Messages.is_step2 ~phase:1 (Ben_or.Messages.Question { phase = 1 }))

let raft_message_kinds () =
  let ae entries =
    Raft.Types.Append_entries
      {
        term = 2;
        leader_id = 0;
        prev_log_index = 0;
        prev_log_term = 0;
        entries;
        leader_commit = 1;
      }
  in
  check Alcotest.string "entries kind" "ae"
    (Raft.Types.msg_kind (ae [ { Raft.Types.entry_term = 2; cmd = "x" } ]));
  check Alcotest.string "commit kind" "ae-commit" (Raft.Types.msg_kind (ae []));
  check Alcotest.string "vote kind" "rv"
    (Raft.Types.msg_kind
       (Raft.Types.Request_vote
          { term = 1; candidate_id = 0; last_log_index = 0; last_log_term = 0 }))

(* --- latency models ------------------------------------------------------ *)

let latency_draws_in_range () =
  let rng = Dsim.Rng.create 4L in
  for _ = 1 to 200 do
    let d = Netsim.Latency.draw (Netsim.Latency.Uniform (3, 9)) ~src:0 ~dst:1 ~rng in
    check Alcotest.bool "in range" true (d >= 3 && d <= 9)
  done;
  check Alcotest.int "fixed" 7
    (Netsim.Latency.draw (Netsim.Latency.Fixed 7) ~src:0 ~dst:1 ~rng);
  for _ = 1 to 200 do
    let d =
      Netsim.Latency.draw
        (Netsim.Latency.Exponential { mean = 10.0; cap = 50 })
        ~src:0 ~dst:1 ~rng
    in
    check Alcotest.bool "capped" true (d >= 0 && d <= 50)
  done

let latency_per_link_and_negative_clamp () =
  let rng = Dsim.Rng.create 4L in
  let model = Netsim.Latency.Per_link (fun ~src ~dst ~rng:_ -> (10 * src) - dst) in
  check Alcotest.int "programmable" 19 (Netsim.Latency.draw model ~src:2 ~dst:1 ~rng);
  check Alcotest.int "negative clamped to 0" 0
    (Netsim.Latency.draw model ~src:0 ~dst:5 ~rng)

let suite =
  [
    Alcotest.test_case "tally counts by phase" `Quick tally_counts_by_phase;
    Alcotest.test_case "tally dedups senders" `Quick tally_dedups_senders;
    Alcotest.test_case "tally forget_below" `Quick tally_forget_below;
    Alcotest.test_case "dec tally majority/order" `Quick dec_tally_majority_and_order;
    Alcotest.test_case "dec tally ratifications" `Quick dec_tally_ratifications;
    Alcotest.test_case "ben-or message pp" `Quick benor_message_pp;
    Alcotest.test_case "ben-or message predicates" `Quick benor_message_predicates;
    Alcotest.test_case "raft message kinds" `Quick raft_message_kinds;
    Alcotest.test_case "latency ranges" `Quick latency_draws_in_range;
    Alcotest.test_case "latency per-link" `Quick latency_per_link_and_negative_clamp;
  ]
