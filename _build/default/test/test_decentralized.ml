(* Tests for the decentralized (leaderless) Raft variant of Section 4.3. *)

module Dec = Raft.Decentralized
module M = Consensus.Monitor.Make (Consensus.Objects.Int_value)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

type run_result = {
  decisions : (int * int * int) list;
  violations : Consensus.Monitor.violation list;
  quiescent : bool;
}

let run ?(n = 7) ?(seed = 1) ?(crashes = []) inputs =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:1_000 () in
  let net = Netsim.Async_net.create eng ~n ~retain_inbox:false () in
  let t = (n - 1) / 2 in
  let monitor = M.create () in
  let decisions = ref [] in
  let pids =
    Array.init n (fun i ->
        M.record_initial monitor ~pid:i inputs.(i);
        Dsim.Engine.spawn eng (fun _ectx ->
            let ctx = Dec.make_ctx ~net ~me:i ~faults:t ~input:inputs.(i) in
            let observer = M.observer monitor ~pid:i in
            let v, m =
              Dec.Consensus_decentralized.consensus ~max_rounds:500 ~observer ctx
                inputs.(i)
            in
            decisions := (i, v, m) :: !decisions))
  in
  List.iter
    (fun (delay, victim) ->
      Dsim.Engine.schedule eng ~delay (fun () ->
          Netsim.Async_net.crash net victim;
          Dsim.Engine.kill eng pids.(victim)))
    crashes;
  let outcome = Dsim.Engine.run eng in
  {
    decisions = List.rev !decisions;
    violations = M.check_vac monitor @ M.check_consensus monitor;
    quiescent = (outcome = Dsim.Engine.Quiescent);
  }

let agree r =
  match r.decisions with
  | [] -> false
  | (_, v0, _) :: rest -> List.for_all (fun (_, v, _) -> v = v0) rest

let unanimous_decides_input () =
  let r = run (Array.make 7 55) in
  check Alcotest.bool "quiescent" true r.quiescent;
  check Alcotest.int "all decided" 7 (List.length r.decisions);
  List.iter
    (fun (_, v, m) ->
      check Alcotest.int "decides 55" 55 v;
      check Alcotest.int "round 1" 1 m)
    r.decisions;
  check Alcotest.int "no violations" 0 (List.length r.violations)

let multivalued_inputs_agree () =
  for seed = 1 to 10 do
    let r = run ~seed (Array.init 7 (fun i -> 100 + (i mod 3))) in
    check Alcotest.bool (Printf.sprintf "seed %d agrees" seed) true (agree r);
    check Alcotest.int "no violations" 0 (List.length r.violations)
  done

let crash_tolerance () =
  for seed = 1 to 10 do
    let r =
      run ~seed
        ~crashes:[ (10, 0); (23, 2); (36, 5) ]
        (Array.init 7 (fun i -> 100 + (i mod 3)))
    in
    check Alcotest.bool (Printf.sprintf "seed %d quiescent" seed) true r.quiescent;
    check Alcotest.bool "survivors agree" true (agree r);
    (* At least the 4 survivors decide; a victim may also have decided
       before its scheduled crash. *)
    check Alcotest.bool "at least 4 decided" true (List.length r.decisions >= 4);
    check Alcotest.int "no violations" 0 (List.length r.violations)
  done

let validity_multivalued () =
  (* Decisions must be someone's input even with many distinct values. *)
  for seed = 1 to 10 do
    let inputs = Array.init 5 (fun i -> 10 * (i + 1)) in
    let r = run ~n:5 ~seed inputs in
    List.iter
      (fun (_, v, _) ->
        check Alcotest.bool "valid decision" true (Array.exists (fun x -> x = v) inputs))
      r.decisions
  done

let prop_safety =
  QCheck.Test.make ~name:"decentralized variant safety over seeds/sizes" ~count:40
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 9))
    (fun (seed, n) ->
      let inputs = Array.init n (fun i -> 7 + (i mod 4)) in
      let r = run ~n ~seed inputs in
      r.quiescent && agree r && r.violations = [])

let suite =
  [
    Alcotest.test_case "unanimous decides input" `Quick unanimous_decides_input;
    Alcotest.test_case "multivalued agreement" `Quick multivalued_inputs_agree;
    Alcotest.test_case "crash tolerance" `Quick crash_tolerance;
    Alcotest.test_case "multivalued validity" `Quick validity_multivalued;
    qtest prop_safety;
  ]
