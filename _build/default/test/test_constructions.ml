(* Tests for the Section-5 VAC-from-two-AC construction, with scripted AC
   objects pinning the exact output mapping, and with the real shared-
   memory ACs checking the composed guarantees. *)

open Consensus.Types

let check = Alcotest.check

type script = {
  mutable a_outputs : int ac_result list;
  mutable b_outputs : int ac_result list;
  mutable b_inputs : int list;
}

module Scripted_a = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round:_ _v =
    match s.a_outputs with
    | [] -> Alcotest.fail "AC_a script exhausted"
    | out :: rest ->
        s.a_outputs <- rest;
        out
end

module Scripted_b = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round:_ v =
    s.b_inputs <- v :: s.b_inputs;
    match s.b_outputs with
    | [] -> Alcotest.fail "AC_b script exhausted"
    | out :: rest ->
        s.b_outputs <- rest;
        out
end

module Vac = Consensus.Constructions.Vac_of_two_ac (Scripted_a) (Scripted_b)

let vac_testable =
  Alcotest.testable (pp_vac Format.pp_print_int) (equal_vac Int.equal)

let mapping_table () =
  let case a b expected =
    let s = { a_outputs = [ a ]; b_outputs = [ b ]; b_inputs = [] } in
    check vac_testable
      (Format.asprintf "%a , %a" (pp_ac Format.pp_print_int) a
         (pp_ac Format.pp_print_int) b)
      expected
      (Vac.invoke s ~round:1 0)
  in
  case (AC_commit 1) (AC_commit 1) (Commit 1);
  case (AC_adopt 1) (AC_commit 1) (Adopt 1);
  case (AC_commit 1) (AC_adopt 1) (Adopt 1);
  case (AC_adopt 1) (AC_adopt 1) (Vacillate 1)

let second_ac_receives_first_ac_value () =
  let s = { a_outputs = [ AC_adopt 42 ]; b_outputs = [ AC_adopt 42 ]; b_inputs = [] } in
  ignore (Vac.invoke s ~round:1 7 : int vac_result);
  check (Alcotest.list Alcotest.int) "B fed A's output" [ 42 ] s.b_inputs

let output_value_comes_from_second_ac () =
  (* Even if the ACs disagree on values (possible across processors), the
     published value is always AC_b's. *)
  let s = { a_outputs = [ AC_commit 1 ]; b_outputs = [ AC_adopt 2 ]; b_inputs = [] } in
  check vac_testable "value from B" (Adopt 2) (Vac.invoke s ~round:1 0)

(* --- end-to-end with the real register-based ACs ----------------------- *)

module Sm = Sharedmem.Protocol.Make (Consensus.Objects.Int_value)
module M = Consensus.Monitor.Make (Consensus.Objects.Int_value)

let run_composed ~n ~seed ~inputs =
  let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n world in
  let monitor = M.create () in
  Array.iteri
    (fun i input ->
      M.record_initial monitor ~pid:i input;
      ignore
        (Dsim.Engine.spawn eng (fun ectx ->
             let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
             M.record_output monitor ~round:1 ~pid:i (Sm.Vac.invoke ctx ~round:1 input))
        : Dsim.Engine.pid))
    inputs;
  ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
  monitor

let composed_convergence () =
  let monitor = run_composed ~n:5 ~seed:3 ~inputs:(Array.make 5 4) in
  check Alcotest.int "no violations" 0 (List.length (M.check_vac monitor));
  List.iter
    (fun (_, out) -> check vac_testable "unanimous input commits" (Commit 4) out)
    (M.outputs monitor ~round:1)

let composed_guarantees_hold =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"two-AC VAC guarantees over random schedules/inputs"
       ~count:150
       QCheck.(pair (int_range 1 100_000) (int_range 2 7))
       (fun (seed, n) ->
         let inputs = Array.init n (fun i -> (seed + i) mod 3) in
         let monitor = run_composed ~n ~seed ~inputs in
         M.check_vac monitor = []))

(* --- the converse: AC from one VAC -------------------------------------- *)

type vac_script = { mutable vac_outputs : int vac_result list }

module Scripted_vac = struct
  type ctx = vac_script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round:_ _v =
    match s.vac_outputs with
    | [] -> Alcotest.fail "VAC script exhausted"
    | out :: rest ->
        s.vac_outputs <- rest;
        out
end

module Demoted = Consensus.Constructions.Ac_of_vac (Scripted_vac)

let ac_testable =
  Alcotest.testable (pp_ac Format.pp_print_int) (equal_ac Int.equal)

let demotion_table () =
  let case vac expected =
    let s = { vac_outputs = [ vac ] } in
    check ac_testable
      (Format.asprintf "%a" (pp_vac Format.pp_print_int) vac)
      expected
      (Demoted.invoke s ~round:1 0)
  in
  case (Commit 3) (AC_commit 3);
  case (Adopt 3) (AC_adopt 3);
  case (Vacillate 3) (AC_adopt 3)

let demoted_ben_or_vac_is_correct_ac =
  (* Run Ben-Or's real VAC demoted to an AC and check the AC guarantees
     round 1 over random seeds. *)
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"Ben-Or VAC demoted to AC keeps AC guarantees" ~count:40
       QCheck.(pair (int_range 1 1_000_000) (int_range 3 9))
       (fun (seed, n) ->
         let module Demoted_benor =
           Consensus.Constructions.Ac_of_vac (Ben_or.Protocol.Vac) in
         let module BM = Consensus.Monitor.Make (Consensus.Objects.Bool_value) in
         let eng =
           Dsim.Engine.create ~seed:(Int64.of_int seed) ~trace_capacity:100 ()
         in
         let net = Netsim.Async_net.create eng ~n ~retain_inbox:false () in
         let t = (n - 1) / 2 in
         let monitor = BM.create () in
         for i = 0 to n - 1 do
           let input = (seed + i) mod 2 = 0 in
           BM.record_initial monitor ~pid:i input;
           ignore
             (Dsim.Engine.spawn eng (fun ectx ->
                  let ctx =
                    Ben_or.Protocol.make_ctx ~net ~me:i ~faults:t
                      ~rng:ectx.Dsim.Engine.rng ()
                  in
                  let out = Demoted_benor.invoke ctx ~round:1 input in
                  BM.record_output monitor ~round:1 ~pid:i
                    (Consensus.Types.vac_of_ac out))
             : Dsim.Engine.pid)
         done;
         ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
         BM.check_ac monitor = []))

let suite =
  [
    Alcotest.test_case "mapping table" `Quick mapping_table;
    Alcotest.test_case "demotion table" `Quick demotion_table;
    demoted_ben_or_vac_is_correct_ac;
    Alcotest.test_case "B receives A's value" `Quick second_ac_receives_first_ac_value;
    Alcotest.test_case "output value from B" `Quick output_value_comes_from_second_ac;
    Alcotest.test_case "composed convergence" `Quick composed_convergence;
    composed_guarantees_hold;
  ]
