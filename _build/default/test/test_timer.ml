(* Tests for resettable timers. *)

module Engine = Dsim.Engine
module Timer = Dsim.Timer

let check = Alcotest.check

let fires_once () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.create e (fun () -> incr fired) in
  Timer.arm t ~delay:10;
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "fired exactly once" 1 !fired;
  check Alcotest.bool "disarmed after firing" false (Timer.is_armed t)

let cancel_prevents_firing () =
  let e = Engine.create () in
  let fired = ref 0 in
  let t = Timer.create e (fun () -> incr fired) in
  Timer.arm t ~delay:10;
  Engine.schedule e ~delay:5 (fun () -> Timer.cancel t);
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "never fired" 0 !fired

let rearm_replaces_pending () =
  let e = Engine.create () in
  let fire_times = ref [] in
  let t = ref None in
  let timer = Timer.create e (fun () -> fire_times := Engine.now e :: !fire_times) in
  t := Some timer;
  Timer.arm timer ~delay:10;
  Engine.schedule e ~delay:5 (fun () -> Timer.arm timer ~delay:10);
  ignore (Engine.run e : Engine.outcome);
  check (Alcotest.list Alcotest.int) "single firing at reset deadline" [ 15 ]
    (List.rev !fire_times)

let raft_style_heartbeat () =
  (* Re-arming from inside the callback gives a periodic timer. *)
  let e = Engine.create () in
  let count = ref 0 in
  let rec mk () =
    let t =
      Timer.create e (fun () ->
          incr count;
          if !count < 5 then Timer.arm (Lazy.force lazy_t) ~delay:10)
    in
    t
  and lazy_t = lazy (mk ()) in
  Timer.arm (Lazy.force lazy_t) ~delay:10;
  ignore (Engine.run e : Engine.outcome);
  check Alcotest.int "five periodic firings" 5 !count;
  check Alcotest.int "clock advanced accordingly" 50 (Engine.now e)

let is_armed_tracks_state () =
  let e = Engine.create () in
  let t = Timer.create e (fun () -> ()) in
  check Alcotest.bool "initially disarmed" false (Timer.is_armed t);
  Timer.arm t ~delay:5;
  check Alcotest.bool "armed" true (Timer.is_armed t);
  Timer.cancel t;
  check Alcotest.bool "cancelled" false (Timer.is_armed t);
  ignore (Engine.run e : Engine.outcome)

let suite =
  [
    Alcotest.test_case "fires once" `Quick fires_once;
    Alcotest.test_case "cancel prevents firing" `Quick cancel_prevents_firing;
    Alcotest.test_case "rearm replaces pending" `Quick rearm_replaces_pending;
    Alcotest.test_case "periodic via re-arm" `Quick raft_style_heartbeat;
    Alcotest.test_case "is_armed tracks state" `Quick is_armed_tracks_state;
  ]
