(* Tests for the lock-step synchronous network and Byzantine strategies. *)

module Engine = Dsim.Engine
module Sync = Netsim.Sync_net
module Byz = Netsim.Byzantine

let check = Alcotest.check

let run_exchange ~n ~byzantine ~strategy bodies =
  let e = Engine.create ~seed:3L () in
  let net = Sync.create e ~n ~byzantine ~strategy in
  List.iter
    (fun (i, body) -> ignore (Engine.spawn e (fun _ -> body net i) : Engine.pid))
    bodies;
  let outcome = Engine.run e in
  (net, outcome)

let honest_exchange () =
  let results = Array.make 3 [||] in
  let _, outcome =
    run_exchange ~n:3 ~byzantine:[] ~strategy:Byz.silent
      (List.init 3 (fun i ->
           (i, fun net me -> results.(me) <- Sync.exchange net ~me (100 + me))))
  in
  check Alcotest.bool "quiescent" true (outcome = Engine.Quiescent);
  Array.iteri
    (fun me row ->
      check
        (Alcotest.array (Alcotest.option Alcotest.int))
        (Printf.sprintf "node %d sees everyone" me)
        [| Some 100; Some 101; Some 102 |]
        row)
    results

let multiple_rounds_advance () =
  let seen = ref [] in
  let net, _ =
    run_exchange ~n:2 ~byzantine:[] ~strategy:Byz.silent
      (List.init 2 (fun i ->
           ( i,
             fun net me ->
               for r = 1 to 3 do
                 let row = Sync.exchange net ~me (10 * me + r) in
                 if me = 0 then seen := row :: !seen
               done )))
  in
  check Alcotest.int "three rounds completed" 3 (Sync.current_round net);
  check Alcotest.int "three result rows" 3 (List.length !seen)

let silent_byzantine_sends_nothing () =
  let row = ref [||] in
  let net, _ =
    run_exchange ~n:3 ~byzantine:[ 2 ] ~strategy:Byz.silent
      [ (0, fun net me -> row := Sync.exchange net ~me 1); (1, fun net me -> ignore (Sync.exchange net ~me 1 : int option array)) ]
  in
  check Alcotest.bool "byzantine flag" true (Sync.is_byzantine net 2);
  check Alcotest.int "byzantine count" 1 (Sync.byzantine_count net);
  check
    (Alcotest.array (Alcotest.option Alcotest.int))
    "silent slot is None"
    [| Some 1; Some 1; None |]
    !row

let equivocation_per_destination () =
  let rows = Array.make 4 [||] in
  let _, _ =
    run_exchange ~n:4 ~byzantine:[ 0 ] ~strategy:(Byz.split_world 7 9)
      (List.init 3 (fun k ->
           let i = k + 1 in
           (i, fun net me -> rows.(me) <- Sync.exchange net ~me 0)))
  in
  (* dst < n/2 gets 7; others get 9. *)
  check (Alcotest.option Alcotest.int) "dst 1 gets low" (Some 7) rows.(1).(0);
  check (Alcotest.option Alcotest.int) "dst 2 gets high" (Some 9) rows.(2).(0);
  check (Alcotest.option Alcotest.int) "dst 3 gets high" (Some 9) rows.(3).(0)

let rushing_adversary_sees_current_round () =
  let captured = ref None in
  let strategy =
    Sync.{
      strategy_name = "spy";
      act =
        (fun ~round:_ ~byz:_ ~view ~dst:_ ~rng:_ ->
          captured := Some (Array.copy view);
          Some 0);
    }
  in
  let _ =
    run_exchange ~n:3 ~byzantine:[ 2 ] ~strategy
      (List.init 2 (fun i ->
           (i, fun net me -> ignore (Sync.exchange net ~me (me + 50) : int option array))))
  in
  match !captured with
  | Some view ->
      check
        (Alcotest.array (Alcotest.option Alcotest.int))
        "adversary saw honest messages before choosing"
        [| Some 50; Some 51; None |]
        view
  | None -> Alcotest.fail "strategy never consulted"

let crash_after_strategy () =
  let rows = ref [] in
  let _ =
    run_exchange ~n:3 ~byzantine:[ 2 ]
      ~strategy:(Byz.crash_after 1 (Byz.constant 5))
      (List.init 2 (fun i ->
           ( i,
             fun net me ->
               for _ = 1 to 2 do
                 let row = Sync.exchange net ~me 0 in
                 if me = 0 then rows := row.(2) :: !rows
               done )))
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "active then silent" [ Some 5; None ] (List.rev !rows)

let alternate_strategy () =
  let rows = ref [] in
  let _ =
    run_exchange ~n:3 ~byzantine:[ 2 ]
      ~strategy:(Byz.alternate (Byz.constant 1) (Byz.constant 2))
      (List.init 2 (fun i ->
           ( i,
             fun net me ->
               for _ = 1 to 4 do
                 let row = Sync.exchange net ~me 0 in
                 if me = 0 then rows := row.(2) :: !rows
               done )))
  in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "even/odd alternation"
    [ Some 1; Some 2; Some 1; Some 2 ]
    (List.rev !rows)

let echo_first_honest () =
  let rows = Array.make 3 [||] in
  let _ =
    run_exchange ~n:3 ~byzantine:[ 1 ] ~strategy:Byz.echo_first_honest
      [ (0, fun net me -> rows.(0) <- Sync.exchange net ~me 42);
        (2, fun net me -> rows.(2) <- Sync.exchange net ~me 43) ]
  in
  check (Alcotest.option Alcotest.int) "echoes p0's message" (Some 42) rows.(0).(1)

let crashed_honest_leaves_barrier () =
  let e = Engine.create () in
  let net = Sync.create e ~n:3 ~byzantine:[] ~strategy:Byz.silent in
  let rows = ref [] in
  let record me v =
    (* bind the row before touching [rows]: [exchange] suspends, and
       reading [!rows] before the suspension would lose updates *)
    let row = Sync.exchange net ~me v in
    rows := row :: !rows
  in
  ignore (Engine.spawn e (fun _ -> record 0 10) : Engine.pid);
  ignore (Engine.spawn e (fun _ -> record 1 11) : Engine.pid);
  (* p2 never exchanges; without marking it crashed the barrier stalls. *)
  Engine.schedule e ~delay:5 (fun () -> Sync.crash net 2);
  let outcome = Engine.run e in
  check Alcotest.bool "round completed" true (outcome = Engine.Quiescent);
  check Alcotest.int "both got rows" 2 (List.length !rows);
  List.iter
    (fun row ->
      check (Alcotest.option Alcotest.int) "crashed slot empty" None row.(2))
    !rows

let double_submission_rejected () =
  let e = Engine.create () in
  let net = Sync.create e ~n:2 ~byzantine:[] ~strategy:Byz.silent in
  (* Submitting twice without the round completing is a protocol bug. *)
  let p =
    Engine.spawn e (fun _ ->
        ignore (Sync.exchange net ~me:0 1 : int option array))
  in
  ignore (Engine.run e : Engine.outcome);
  (* p is blocked (partner never submitted): now inject a second submit. *)
  check Alcotest.bool "still alive and blocked" true (Engine.alive e p);
  Alcotest.check_raises "byzantine cannot exchange"
    (Invalid_argument "Sync_net.exchange: Byzantine ids run no code") (fun () ->
      let net2 =
        Sync.create (Engine.create ()) ~n:2 ~byzantine:[ 0 ] ~strategy:Byz.silent
      in
      ignore (Sync.exchange net2 ~me:0 1 : int option array))

let suite =
  [
    Alcotest.test_case "honest exchange" `Quick honest_exchange;
    Alcotest.test_case "multiple rounds" `Quick multiple_rounds_advance;
    Alcotest.test_case "silent byzantine" `Quick silent_byzantine_sends_nothing;
    Alcotest.test_case "equivocation per destination" `Quick equivocation_per_destination;
    Alcotest.test_case "rushing adversary" `Quick rushing_adversary_sees_current_round;
    Alcotest.test_case "crash_after strategy" `Quick crash_after_strategy;
    Alcotest.test_case "alternate strategy" `Quick alternate_strategy;
    Alcotest.test_case "echo first honest" `Quick echo_first_honest;
    Alcotest.test_case "crashed honest leaves barrier" `Quick crashed_honest_leaves_barrier;
    Alcotest.test_case "bad submissions rejected" `Quick double_submission_rejected;
  ]
