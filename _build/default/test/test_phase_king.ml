(* Tests for Phase-King: protocol behaviour under every packaged Byzantine
   strategy, the decomposed/monolithic equivalence, and the decision-rule
   counterexample. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run ?(n = 7) ?(seed = 1) ?byzantine ?strategy ?(mode = Phase_king.Runner.Decomposed)
    inputs =
  let cfg = Phase_king.Runner.default_config ~n ~inputs in
  let cfg =
    {
      cfg with
      seed = Int64.of_int seed;
      mode;
      byzantine = Option.value ~default:cfg.Phase_king.Runner.byzantine byzantine;
      strategy = Option.value ~default:cfg.Phase_king.Runner.strategy strategy;
    }
  in
  Phase_king.Runner.run cfg

let finals_agree r =
  match r.Phase_king.Runner.final_decisions with
  | [] -> false
  | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest

let healthy r =
  r.Phase_king.Runner.violations = []
  && r.Phase_king.Runner.process_failures = []
  && finals_agree r
  && match r.Phase_king.Runner.engine_outcome with
     | Dsim.Engine.Quiescent -> true
     | Dsim.Engine.Deadlock _ | Dsim.Engine.Time_limit | Dsim.Engine.Event_limit ->
         false

let unanimous_commits_immediately () =
  let r = run (Array.make 7 1) in
  check Alcotest.bool "healthy" true (healthy r);
  List.iter
    (fun (_, v) -> check Alcotest.int "decides the unanimous input" 1 v)
    r.Phase_king.Runner.final_decisions;
  List.iter
    (fun (_, v, m) ->
      check Alcotest.int "commit value" 1 v;
      check Alcotest.int "commits in round 1" 1 m)
    r.Phase_king.Runner.first_commits;
  check Alcotest.int "every correct processor committed" 5
    (List.length r.Phase_king.Runner.first_commits)

let runs_exactly_t_plus_one_rounds () =
  let r = run ~n:10 (Array.init 10 (fun i -> i mod 2)) in
  check Alcotest.int "template rounds" 4 r.Phase_king.Runner.template_rounds;
  check Alcotest.int "sync rounds = 3 per template round" 12
    r.Phase_king.Runner.sync_rounds

let all_strategies_safe () =
  List.iter
    (fun (name, strategy) ->
      for seed = 1 to 5 do
        for n = 4 to 13 do
          if (n - 1) / 3 >= 1 then begin
            let inputs = Array.init n (fun i -> i mod 2) in
            let r = run ~n ~seed ~strategy inputs in
            check Alcotest.bool (Printf.sprintf "%s n=%d seed=%d" name n seed) true
              (healthy r)
          end
        done
      done)
    [
      ("silent", Netsim.Byzantine.silent);
      ("random", Netsim.Byzantine.random_of [| 0; 1; 2 |]);
      ("split-world", Netsim.Byzantine.split_world 0 1);
      ("echo", Netsim.Byzantine.echo_first_honest);
      ("camp-splitter", Phase_king.Strategies.camp_splitter);
      ("vote-inflater-0", Phase_king.Strategies.vote_inflater 0);
      ("vote-inflater-1", Phase_king.Strategies.vote_inflater 1);
      ("vote-inflater-2", Phase_king.Strategies.vote_inflater 2);
    ]

let validity_with_byzantine_noise () =
  (* All correct processors start with 1; whatever the adversary does the
     decision must be 1. *)
  for seed = 1 to 10 do
    let r =
      run ~seed ~strategy:(Netsim.Byzantine.random_of [| 0; 1; 2 |])
        (Array.make 7 1)
    in
    List.iter
      (fun (_, v) -> check Alcotest.int "unanimous-correct validity" 1 v)
      r.Phase_king.Runner.final_decisions
  done

let monolithic_matches_decomposed () =
  List.iter
    (fun strategy ->
      for seed = 1 to 5 do
        let inputs = Array.init 10 (fun i -> i mod 2) in
        let rd = run ~n:10 ~seed ~strategy ~mode:Phase_king.Runner.Decomposed inputs in
        let rm = run ~n:10 ~seed ~strategy ~mode:Phase_king.Runner.Monolithic inputs in
        check Alcotest.bool "same final decisions" true
          (rd.Phase_king.Runner.final_decisions = rm.Phase_king.Runner.final_decisions);
        check Alcotest.bool "same first commits" true
          (rd.Phase_king.Runner.first_commits = rm.Phase_king.Runner.first_commits)
      done)
    [
      Netsim.Byzantine.silent;
      Phase_king.Strategies.camp_splitter;
      Netsim.Byzantine.split_world 0 1;
    ]

let counterexample_separates_decision_rules () =
  let cfg =
    {
      (Phase_king.Runner.default_config ~n:4 ~inputs:[| 0; 1; 1; 0 |]) with
      byzantine = [ 0 ];
      strategy = Phase_king.Strategies.commit_then_steal;
    }
  in
  let r = Phase_king.Runner.run cfg in
  (* The BGP rule (final preference) agrees... *)
  check Alcotest.bool "final decisions agree" true (finals_agree r);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "all decide 0"
    [ (1, 0); (2, 0); (3, 0) ]
    r.Phase_king.Runner.final_decisions;
  (* ...while the paper-template rule (first commit) does not: p1 committed
     1 in round 1 and the rest committed 0 later. *)
  check Alcotest.bool "first-commit rule broken" true
    r.Phase_king.Runner.first_commit_agreement_broken;
  check Alcotest.bool "p1 was lured into committing 1 in round 1" true
    (List.mem (1, 1, 1) r.Phase_king.Runner.first_commits);
  (* Per-round AC guarantees still held — the failure is the template's
     decision rule, not the object. *)
  check Alcotest.int "no object violations" 0
    (List.length r.Phase_king.Runner.violations)

let message_accounting () =
  let r = run ~n:7 (Array.init 7 (fun i -> i mod 2)) in
  (* 3 template rounds (t=2), each 2 exchanges of 5 correct * 7 + king
     broadcast of 7. *)
  check Alcotest.int "analytic count" (3 * ((2 * 5 * 7) + 7))
    r.Phase_king.Runner.messages

let rejects_bad_configs () =
  Alcotest.check_raises "3t >= n" (Invalid_argument "Phase_king.Runner.run: requires 3t < n")
    (fun () ->
      let cfg = Phase_king.Runner.default_config ~n:6 ~inputs:(Array.make 6 1) in
      ignore (Phase_king.Runner.run { cfg with faults = 2 } : Phase_king.Runner.report));
  Alcotest.check_raises "non-binary input"
    (Invalid_argument "Phase_king.Runner.run: inputs must be binary") (fun () ->
      ignore
        (Phase_king.Runner.run
           (Phase_king.Runner.default_config ~n:4 ~inputs:[| 0; 1; 2; 0 |])
        : Phase_king.Runner.report))

let king_rotation () =
  check Alcotest.int "round 1 king" 0 (Phase_king.Protocol.king_of_round ~n:4 ~round:1);
  check Alcotest.int "round 4 king" 3 (Phase_king.Protocol.king_of_round ~n:4 ~round:4);
  check Alcotest.int "wraps" 0 (Phase_king.Protocol.king_of_round ~n:4 ~round:5)

let prop_safety_random_byzantine_sets =
  QCheck.Test.make ~name:"Phase-King safety: random Byzantine subsets and seeds"
    ~count:50
    QCheck.(triple (int_range 1 1_000_000) (int_range 4 13) (int_range 0 1000))
    (fun (seed, n, salt) ->
      let t = (n - 1) / 3 in
      if t = 0 then true
      else begin
        (* pick t distinct Byzantine ids pseudo-randomly *)
        let rng = Dsim.Rng.create (Int64.of_int (seed + salt)) in
        let ids = Array.init n Fun.id in
        Dsim.Rng.shuffle rng ids;
        let byzantine = Array.to_list (Array.sub ids 0 t) in
        let inputs = Array.init n (fun i -> (salt + i) mod 2) in
        let r = run ~n ~seed ~byzantine ~strategy:(Netsim.Byzantine.random_of [| 0; 1; 2 |]) inputs in
        healthy r
      end)

let suite =
  [
    Alcotest.test_case "unanimous commits immediately" `Quick unanimous_commits_immediately;
    Alcotest.test_case "t+1 rounds exactly" `Quick runs_exactly_t_plus_one_rounds;
    Alcotest.test_case "all strategies safe" `Slow all_strategies_safe;
    Alcotest.test_case "validity under noise" `Quick validity_with_byzantine_noise;
    Alcotest.test_case "monolithic = decomposed" `Quick monolithic_matches_decomposed;
    Alcotest.test_case "decision-rule counterexample" `Quick
      counterexample_separates_decision_rules;
    Alcotest.test_case "message accounting" `Quick message_accounting;
    Alcotest.test_case "rejects bad configs" `Quick rejects_bad_configs;
    Alcotest.test_case "king rotation" `Quick king_rotation;
    qtest prop_safety_random_byzantine_sets;
  ]
