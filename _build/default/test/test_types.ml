(* Tests for the object result types. *)

open Consensus.Types

let check = Alcotest.check

let values () =
  check Alcotest.int "ac adopt" 5 (ac_value (AC_adopt 5));
  check Alcotest.int "ac commit" 6 (ac_value (AC_commit 6));
  check Alcotest.int "vac vacillate" 1 (vac_value (Vacillate 1));
  check Alcotest.int "vac adopt" 2 (vac_value (Adopt 2));
  check Alcotest.int "vac commit" 3 (vac_value (Commit 3))

let confidences () =
  check Alcotest.string "adopt" "adopt" (ac_confidence (AC_adopt 0));
  check Alcotest.string "commit" "commit" (ac_confidence (AC_commit 0));
  check Alcotest.string "vacillate" "vacillate" (vac_confidence (Vacillate 0));
  check Alcotest.string "vac adopt" "adopt" (vac_confidence (Adopt 0));
  check Alcotest.string "vac commit" "commit" (vac_confidence (Commit 0))

let embedding () =
  check Alcotest.bool "adopt embeds" true (vac_of_ac (AC_adopt 7) = Adopt 7);
  check Alcotest.bool "commit embeds" true (vac_of_ac (AC_commit 8) = Commit 8)

let equality () =
  let eq = equal_vac Int.equal in
  check Alcotest.bool "same" true (eq (Adopt 1) (Adopt 1));
  check Alcotest.bool "same conf, diff value" false (eq (Adopt 1) (Adopt 2));
  check Alcotest.bool "diff conf, same value" false (eq (Adopt 1) (Commit 1));
  check Alcotest.bool "vacillate vs adopt" false (eq (Vacillate 1) (Adopt 1));
  let eqa = equal_ac Int.equal in
  check Alcotest.bool "ac same" true (eqa (AC_commit 3) (AC_commit 3));
  check Alcotest.bool "ac diff" false (eqa (AC_commit 3) (AC_adopt 3))

let printing () =
  let s r = Format.asprintf "%a" (pp_vac Format.pp_print_int) r in
  check Alcotest.string "vacillate" "(vacillate, 4)" (s (Vacillate 4));
  check Alcotest.string "adopt" "(adopt, 4)" (s (Adopt 4));
  check Alcotest.string "commit" "(commit, 4)" (s (Commit 4));
  let sa r = Format.asprintf "%a" (pp_ac Format.pp_print_int) r in
  check Alcotest.string "ac adopt" "(adopt, 9)" (sa (AC_adopt 9))

let suite =
  [
    Alcotest.test_case "values" `Quick values;
    Alcotest.test_case "confidences" `Quick confidences;
    Alcotest.test_case "AC embeds into VAC" `Quick embedding;
    Alcotest.test_case "equality" `Quick equality;
    Alcotest.test_case "printing" `Quick printing;
  ]
