(* Tests for the Phase-Queen decomposition. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run ?(n = 9) ?(seed = 1) ?byzantine ?strategy ?(mode = Phase_king.Runner.Decomposed)
    inputs =
  let cfg = Phase_king.Runner.default_queen_config ~n ~inputs in
  let cfg =
    {
      cfg with
      Phase_king.Runner.seed = Int64.of_int seed;
      mode;
      byzantine = Option.value ~default:cfg.Phase_king.Runner.byzantine byzantine;
      strategy = Option.value ~default:cfg.Phase_king.Runner.strategy strategy;
    }
  in
  Phase_king.Runner.run cfg

let finals_agree r =
  match r.Phase_king.Runner.final_decisions with
  | [] -> false
  | (_, v0) :: rest -> List.for_all (fun (_, v) -> v = v0) rest

let healthy r =
  r.Phase_king.Runner.violations = []
  && r.Phase_king.Runner.process_failures = []
  && finals_agree r

let unanimous_commits_round_one () =
  let r = run (Array.make 9 0) in
  check Alcotest.bool "healthy" true (healthy r);
  List.iter (fun (_, v) -> check Alcotest.int "decides 0" 0 v)
    r.Phase_king.Runner.final_decisions;
  List.iter
    (fun (_, v, m) ->
      check Alcotest.int "commit value" 0 v;
      check Alcotest.int "round 1" 1 m)
    r.Phase_king.Runner.first_commits

let two_sync_rounds_per_phase () =
  let r = run ~n:13 (Array.init 13 (fun i -> i mod 2)) in
  (* t = 3 -> 4 template rounds -> 8 lock-step rounds. *)
  check Alcotest.int "template rounds" 4 r.Phase_king.Runner.template_rounds;
  check Alcotest.int "sync rounds" 8 r.Phase_king.Runner.sync_rounds

let strategies_safe () =
  List.iter
    (fun (name, strategy) ->
      for seed = 1 to 5 do
        let r = run ~seed ~strategy (Array.init 9 (fun i -> i mod 2)) in
        check Alcotest.bool (Printf.sprintf "%s seed=%d" name seed) true (healthy r)
      done)
    [
      ("silent", Netsim.Byzantine.silent);
      ("random", Netsim.Byzantine.random_of [| 0; 1; 2 |]);
      ("split-world", Netsim.Byzantine.split_world 0 1);
      ("camp-splitter", Phase_king.Strategies.camp_splitter);
      ("vote-inflater", Phase_king.Strategies.vote_inflater 1);
    ]

let monolithic_matches_decomposed () =
  for seed = 1 to 8 do
    let inputs = Array.init 9 (fun i -> i mod 2) in
    let rd = run ~seed ~mode:Phase_king.Runner.Decomposed inputs in
    let rm = run ~seed ~mode:Phase_king.Runner.Monolithic inputs in
    check Alcotest.bool "same finals" true
      (rd.Phase_king.Runner.final_decisions = rm.Phase_king.Runner.final_decisions);
    check Alcotest.bool "same commits" true
      (rd.Phase_king.Runner.first_commits = rm.Phase_king.Runner.first_commits)
  done

let queen_needs_4t_resilience () =
  Alcotest.check_raises "4t >= n rejected"
    (Invalid_argument "Phase_king.Runner.run: requires 4t < n") (fun () ->
      let cfg = Phase_king.Runner.default_queen_config ~n:8 ~inputs:(Array.make 8 1) in
      ignore
        (Phase_king.Runner.run { cfg with Phase_king.Runner.faults = 2 }
        : Phase_king.Runner.report))

let validity_with_noise () =
  for seed = 1 to 8 do
    let r = run ~seed ~strategy:(Netsim.Byzantine.random_of [| 0; 1; 2 |]) (Array.make 9 1) in
    List.iter
      (fun (_, v) -> check Alcotest.int "unanimous-correct validity" 1 v)
      r.Phase_king.Runner.final_decisions
  done

let prop_safety =
  QCheck.Test.make ~name:"Queen safety: random seeds and Byzantine subsets" ~count:40
    QCheck.(triple (int_range 1 1_000_000) (int_range 5 17) (int_range 0 1000))
    (fun (seed, n, salt) ->
      let t = (n - 1) / 4 in
      if t = 0 then true
      else begin
        let rng = Dsim.Rng.create (Int64.of_int (seed * 31 + salt)) in
        let ids = Array.init n Fun.id in
        Dsim.Rng.shuffle rng ids;
        let byzantine = Array.to_list (Array.sub ids 0 t) in
        let inputs = Array.init n (fun i -> (salt + i) mod 2) in
        let r =
          run ~n ~seed ~byzantine
            ~strategy:(Netsim.Byzantine.random_of [| 0; 1; 2 |])
            inputs
        in
        healthy r
      end)

let suite =
  [
    Alcotest.test_case "unanimous commits round 1" `Quick unanimous_commits_round_one;
    Alcotest.test_case "2 sync rounds per phase" `Quick two_sync_rounds_per_phase;
    Alcotest.test_case "strategies safe" `Quick strategies_safe;
    Alcotest.test_case "monolithic = decomposed" `Quick monolithic_matches_decomposed;
    Alcotest.test_case "needs 4t < n" `Quick queen_needs_4t_resilience;
    Alcotest.test_case "validity under noise" `Quick validity_with_noise;
    qtest prop_safety;
  ]
