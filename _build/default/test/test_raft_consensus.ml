(* Tests for consensus-via-Raft (paper Section 4.3) and its VAC view. *)

module Cluster = Raft.Cluster
module CR = Raft.Consensus_raft

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let setup ?(n = 5) ?(seed = 1) ?config () =
  let cl = Cluster.create ~seed:(Int64.of_int seed) ?config ~n () in
  let inputs = Array.init n (fun i -> 100 + i) in
  let cons = CR.create ~cluster:cl ~inputs in
  Cluster.start cl;
  (cl, cons, inputs)

let command_codec () =
  check Alcotest.int "roundtrip" 42 (CR.value_of_command (CR.command_of_value 42));
  check Alcotest.int "negative" (-3) (CR.value_of_command (CR.command_of_value (-3)))

let basic_all_decide_same () =
  let cl, cons, inputs = setup () in
  check Alcotest.bool "all decided" true (CR.run_until_all_decided cons);
  (match CR.decisions cons with
  | [] -> Alcotest.fail "no decisions"
  | (_, v0) :: rest ->
      check Alcotest.bool "validity" true (Array.exists (fun x -> x = v0) inputs);
      List.iter (fun (_, v) -> check Alcotest.int "agreement" v0 v) rest);
  check (Alcotest.list Alcotest.string) "vac view clean" [] (CR.check_vac_view cons);
  check Alcotest.bool "cluster invariants" true
    (Cluster.violations cl = [] && Cluster.check_log_matching cl = [])

let decision_is_first_log_entry () =
  let cl, cons, _ = setup ~seed:4 () in
  ignore (CR.run_until_all_decided cons : bool);
  let first_value =
    CR.value_of_command (Raft.Replica.log_entry (Cluster.replica cl 0) 1).Raft.Types.cmd
  in
  List.iter
    (fun (_, v) -> check Alcotest.int "decision = first entry" first_value v)
    (CR.decisions cons)

let leader_crash_preserves_agreement () =
  for seed = 1 to 15 do
    let cl, cons, _ = setup ~seed () in
    ignore (Cluster.run_until cl (fun () -> Cluster.current_leader cl <> None) : bool);
    (match Cluster.current_leader cl with
    | Some l ->
        Cluster.crash cl l;
        Dsim.Engine.schedule (Cluster.engine cl) ~delay:2_500 (fun () ->
            Cluster.restart cl l)
    | None -> ());
    check Alcotest.bool (Printf.sprintf "seed %d decided" seed) true
      (CR.run_until_all_decided ~timeout:300_000 cons);
    check (Alcotest.list Alcotest.string)
      (Printf.sprintf "seed %d vac view" seed)
      [] (CR.check_vac_view cons)
  done

let vac_view_census_sane () =
  let _, cons, _ = setup ~seed:2 () in
  ignore (CR.run_until_all_decided cons : bool);
  let view = CR.vac_view cons in
  check Alcotest.bool "non-empty view" true (view <> []);
  (* Every commit observation must carry the decided value. *)
  let decided = snd (List.hd (CR.decisions cons)) in
  List.iter
    (fun o ->
      match o.CR.obs with
      | Consensus.Types.Commit v -> check Alcotest.int "commit value" decided v
      | Consensus.Types.Adopt _ | Consensus.Types.Vacillate _ -> ())
    view

let reconciliator_fires_under_contention () =
  (* A tight timeout spread forces split votes and election retries: the
     timer reconciliator must fire repeatedly before a decision lands. *)
  let config =
    { Raft.Replica.default_config with election_timeout = (150, 158) }
  in
  let _, cons, _ = setup ~seed:3 ~config () in
  check Alcotest.bool "eventually decides" true
    (CR.run_until_all_decided ~timeout:600_000 cons);
  check Alcotest.bool "reconciliator invoked" true
    (List.length (CR.reconciliator_invocations cons) >= 1)

let partition_then_heal_decides () =
  let cl, cons, _ = setup ~seed:6 () in
  ignore (Cluster.run_until cl (fun () -> Cluster.current_leader cl <> None) : bool);
  let l = Option.get (Cluster.current_leader cl) in
  let others = List.filter (fun i -> i <> l) [ 0; 1; 2; 3; 4 ] in
  Cluster.partition cl [ [ l ]; others ];
  Dsim.Engine.schedule (Cluster.engine cl) ~delay:4_000 (fun () -> Cluster.heal cl);
  check Alcotest.bool "decides despite partition" true
    (CR.run_until_all_decided ~timeout:300_000 cons);
  check (Alcotest.list Alcotest.string) "view clean" [] (CR.check_vac_view cons)

let prop_agreement_over_seeds =
  QCheck.Test.make ~name:"Raft consensus agreement across sizes and seeds" ~count:25
    QCheck.(pair (int_range 1 1_000_000) (int_range 3 7))
    (fun (seed, n) ->
      let cl, cons, inputs = setup ~n ~seed () in
      let decided = CR.run_until_all_decided ~timeout:300_000 cons in
      let ds = CR.decisions cons in
      decided
      && (match ds with
         | [] -> false
         | (_, v0) :: rest ->
             List.for_all (fun (_, v) -> v = v0) rest
             && Array.exists (fun x -> x = v0) inputs)
      && CR.check_vac_view cons = []
      && Cluster.violations cl = []
      && Cluster.check_log_matching cl = [])

let suite =
  [
    Alcotest.test_case "command codec" `Quick command_codec;
    Alcotest.test_case "all decide same" `Quick basic_all_decide_same;
    Alcotest.test_case "decision = first log entry" `Quick decision_is_first_log_entry;
    Alcotest.test_case "leader crash preserves agreement" `Slow
      leader_crash_preserves_agreement;
    Alcotest.test_case "vac view census" `Quick vac_view_census_sane;
    Alcotest.test_case "reconciliator under contention" `Quick
      reconciliator_fires_under_contention;
    Alcotest.test_case "partition then heal" `Quick partition_then_heal_decides;
    qtest prop_agreement_over_seeds;
  ]
