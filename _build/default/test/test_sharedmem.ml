(* Tests for the shared-memory substrate: registers, Gafni adopt-commit,
   the Aspnes conciliator, and full wait-free consensus. *)

module P = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)
module M = Consensus.Monitor.Make (Consensus.Objects.Bool_value)
module Engine = Dsim.Engine

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let world ?steps ?(seed = 1) () =
  let eng = Engine.create ~seed:(Int64.of_int seed) () in
  (eng, Sharedmem.World.create eng ?steps ())

let register_semantics () =
  let eng, w = world () in
  let r = Sharedmem.World.Reg.make 0 in
  let values = ref [] in
  ignore
    (Engine.spawn eng (fun ectx ->
         let proc = { Sharedmem.World.world = w; me = 0; ectx } in
         Sharedmem.World.Reg.write proc r 5;
         values := Sharedmem.World.Reg.read proc r :: !values;
         Sharedmem.World.Reg.write proc r 7;
         values := Sharedmem.World.Reg.read proc r :: !values)
    : Engine.pid);
  ignore (Engine.run eng : Engine.outcome);
  check (Alcotest.list Alcotest.int) "reads see writes" [ 7; 5 ] !values;
  check Alcotest.bool "ops counted" true (Sharedmem.World.ops_performed w >= 4)

let step_policies_apply () =
  let eng, w = world ~steps:(Sharedmem.World.Fixed_steps 10) () in
  let r = Sharedmem.World.Reg.make 0 in
  ignore
    (Engine.spawn eng (fun ectx ->
         let proc = { Sharedmem.World.world = w; me = 0; ectx } in
         Sharedmem.World.Reg.write proc r 1;
         ignore (Sharedmem.World.Reg.read proc r : int))
    : Engine.pid);
  ignore (Engine.run eng : Engine.outcome);
  check Alcotest.int "two fixed steps" 20 (Engine.now eng)

let custom_step_policy () =
  let calls = ref [] in
  let steps =
    Sharedmem.World.Custom_steps
      (fun ~me ~op ~rng:_ ->
        calls := (me, op) :: !calls;
        1)
  in
  let eng, w = world ~steps () in
  let r = Sharedmem.World.Reg.make 0 in
  ignore
    (Engine.spawn eng (fun ectx ->
         let proc = { Sharedmem.World.world = w; me = 3; ectx } in
         Sharedmem.World.Reg.write proc r 1;
         ignore (Sharedmem.World.Reg.read proc r : int))
    : Engine.pid);
  ignore (Engine.run eng : Engine.outcome);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "adversary consulted per op"
    [ (3, 0); (3, 1) ]
    (List.rev !calls)

(* --- adopt-commit object ------------------------------------------------ *)

let run_ac ~n ~seed ~inputs =
  let eng, w = world ~seed () in
  let shared = P.create_shared ~n w in
  let monitor = M.create () in
  Array.iteri
    (fun i input ->
      M.record_initial monitor ~pid:i input;
      ignore
        (Engine.spawn eng (fun ectx ->
             let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
             M.record_output monitor ~round:1 ~pid:i
               (Consensus.Types.vac_of_ac (P.Ac_a.invoke ctx ~round:1 input)))
        : Engine.pid))
    inputs;
  ignore (Engine.run eng : Engine.outcome);
  monitor

let ac_convergence () =
  let monitor = run_ac ~n:6 ~seed:2 ~inputs:(Array.make 6 true) in
  check Alcotest.int "clean" 0 (List.length (M.check_ac monitor));
  List.iter
    (fun (_, out) ->
      check Alcotest.string "commit" "commit" (Consensus.Types.vac_confidence out))
    (M.outputs monitor ~round:1)

let ac_single_process_commits () =
  let monitor = run_ac ~n:1 ~seed:3 ~inputs:[| false |] in
  match M.outputs monitor ~round:1 with
  | [ (_, out) ] ->
      check Alcotest.string "solo commit" "commit" (Consensus.Types.vac_confidence out)
  | _ -> Alcotest.fail "expected one output"

let prop_ac_guarantees =
  QCheck.Test.make ~name:"Gafni AC guarantees over random schedules" ~count:200
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 8))
    (fun (seed, n) ->
      let inputs = Array.init n (fun i -> (seed + i) mod 2 = 0) in
      let monitor = run_ac ~n ~seed ~inputs in
      M.check_ac monitor = [])

let distinct_instances_do_not_interfere () =
  (* Ac_a and Ac_b of the same round use separate register banks. *)
  let eng, w = world ~seed:5 () in
  let shared = P.create_shared ~n:2 w in
  let outs = ref [] in
  for i = 0 to 1 do
    ignore
      (Engine.spawn eng (fun ectx ->
           let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
           let a = P.Ac_a.invoke ctx ~round:1 (i = 0) in
           let b = P.Ac_b.invoke ctx ~round:1 (i = 1) in
           outs := (i, a, b) :: !outs)
      : Engine.pid)
  done;
  ignore (Engine.run eng : Engine.outcome);
  check Alcotest.int "both processes finished" 2 (List.length !outs)

(* --- conciliator -------------------------------------------------------- *)

let conciliator_validity_and_termination () =
  for seed = 1 to 20 do
    let eng, w = world ~seed () in
    let shared = P.create_shared ~n:4 ~write_probability:0.25 w in
    let results = ref [] in
    for i = 0 to 3 do
      ignore
        (Engine.spawn eng (fun ectx ->
             let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
             let v =
               P.Conciliator.invoke ctx ~round:1 (Consensus.Types.AC_adopt (i mod 2 = 0))
             in
             results := v :: !results)
        : Engine.pid)
    done;
    let outcome = Engine.run eng in
    check Alcotest.bool "terminates" true (outcome = Engine.Quiescent);
    check Alcotest.int "all returned" 4 (List.length !results)
  done

let conciliator_preserves_unanimity () =
  (* Everyone feeds true: every output must be true (the property that
     makes decide-at-first-commit safe in Algorithm 2). *)
  for seed = 1 to 20 do
    let eng, w = world ~seed () in
    let shared = P.create_shared ~n:5 w in
    let results = ref [] in
    for i = 0 to 4 do
      ignore
        (Engine.spawn eng (fun ectx ->
             let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
             let v =
               P.Conciliator.invoke ctx ~round:1 (Consensus.Types.AC_adopt true)
             in
             results := v :: !results)
        : Engine.pid)
    done;
    ignore (Engine.run eng : Engine.outcome);
    List.iter (fun v -> check Alcotest.bool "output true" true v) !results
  done

let conciliator_sometimes_agrees () =
  (* Probabilistic agreement: across seeds, a decent share of mixed-input
     rounds must end unanimous. *)
  let unanimous = ref 0 in
  for seed = 1 to 40 do
    let eng, w = world ~seed () in
    let shared = P.create_shared ~n:4 w in
    let results = ref [] in
    for i = 0 to 3 do
      ignore
        (Engine.spawn eng (fun ectx ->
             let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
             let v =
               P.Conciliator.invoke ctx ~round:1
                 (Consensus.Types.AC_adopt (i mod 2 = 0))
             in
             results := v :: !results)
        : Engine.pid)
    done;
    ignore (Engine.run eng : Engine.outcome);
    match !results with
    | v :: rest when List.for_all (Bool.equal v) rest -> incr unanimous
    | _ -> ()
  done;
  check Alcotest.bool "agreement happens often" true (!unanimous >= 10)

(* --- full consensus ------------------------------------------------------ *)

let run_consensus ~n ~seed ~kills inputs =
  let eng, w = world ~seed () in
  let shared = P.create_shared ~n w in
  let monitor = M.create () in
  let decisions = ref [] in
  let pids =
    Array.init n (fun i ->
        M.record_initial monitor ~pid:i inputs.(i);
        Engine.spawn eng (fun ectx ->
            let ctx = { P.shared; proc = { Sharedmem.World.world = w; me = i; ectx } } in
            let observer = M.observer monitor ~pid:i in
            let v, m = P.Consensus_sm.consensus ~observer ctx inputs.(i) in
            decisions := (i, v, m) :: !decisions))
  in
  List.iter
    (fun (delay, victim) ->
      Engine.schedule eng ~delay (fun () -> Engine.kill eng pids.(victim)))
    kills;
  let outcome = Engine.run eng in
  (outcome, List.rev !decisions, M.check_ac monitor @ M.check_consensus monitor)

let consensus_basic () =
  let outcome, ds, viols =
    run_consensus ~n:6 ~seed:4 ~kills:[] (Array.init 6 (fun i -> i mod 2 = 0))
  in
  check Alcotest.bool "quiescent" true (outcome = Engine.Quiescent);
  check Alcotest.int "all decided" 6 (List.length ds);
  check Alcotest.int "clean" 0 (List.length viols);
  match ds with
  | (_, v0, _) :: rest ->
      List.iter (fun (_, v, _) -> check Alcotest.bool "agreement" v0 v) rest
  | [] -> Alcotest.fail "no decisions"

let consensus_wait_free_under_kills () =
  (* Wait-freedom: kill ANY strict subset at arbitrary times — the
     survivors always finish. *)
  for seed = 1 to 15 do
    let outcome, ds, viols =
      run_consensus ~n:6 ~seed
        ~kills:[ (3, 0); (9, 1); (15, 2); (21, 3); (27, 4) ]
        (Array.init 6 (fun i -> i mod 2 = 0))
    in
    check Alcotest.bool (Printf.sprintf "seed %d quiescent" seed) true
      (outcome = Engine.Quiescent);
    check Alcotest.bool "survivor decided" true (List.length ds >= 1);
    check Alcotest.int "clean" 0 (List.length viols)
  done

let prop_consensus_safety =
  QCheck.Test.make ~name:"shared-memory consensus safety" ~count:60
    QCheck.(pair (int_range 1 1_000_000) (int_range 2 8))
    (fun (seed, n) ->
      let inputs = Array.init n (fun i -> (seed + i) mod 2 = 0) in
      let outcome, ds, viols = run_consensus ~n ~seed ~kills:[] inputs in
      outcome = Engine.Quiescent
      && List.length ds = n
      && viols = []
      &&
      match ds with
      | (_, v0, _) :: rest -> List.for_all (fun (_, v, _) -> Bool.equal v v0) rest
      | [] -> false)

let suite =
  [
    Alcotest.test_case "register semantics" `Quick register_semantics;
    Alcotest.test_case "step policies" `Quick step_policies_apply;
    Alcotest.test_case "custom step policy" `Quick custom_step_policy;
    Alcotest.test_case "AC convergence" `Quick ac_convergence;
    Alcotest.test_case "AC solo commit" `Quick ac_single_process_commits;
    qtest prop_ac_guarantees;
    Alcotest.test_case "AC instances isolated" `Quick distinct_instances_do_not_interfere;
    Alcotest.test_case "conciliator validity/termination" `Quick
      conciliator_validity_and_termination;
    Alcotest.test_case "conciliator preserves unanimity" `Quick
      conciliator_preserves_unanimity;
    Alcotest.test_case "conciliator sometimes agrees" `Quick conciliator_sometimes_agrees;
    Alcotest.test_case "consensus basic" `Quick consensus_basic;
    Alcotest.test_case "wait-free under kills" `Quick consensus_wait_free_under_kills;
    qtest prop_consensus_safety;
  ]
