(* Unit and property tests for the splitmix64 generator. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let determinism () =
  let a = Dsim.Rng.create 42L and b = Dsim.Rng.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same seed, same stream" (Dsim.Rng.next_int64 a)
      (Dsim.Rng.next_int64 b)
  done

let different_seeds () =
  let a = Dsim.Rng.create 1L and b = Dsim.Rng.create 2L in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Dsim.Rng.next_int64 a = Dsim.Rng.next_int64 b then incr same
  done;
  check Alcotest.bool "streams diverge" true (!same < 3)

let copy_freezes_state () =
  let a = Dsim.Rng.create 7L in
  ignore (Dsim.Rng.next_int64 a : int64);
  let b = Dsim.Rng.copy a in
  check Alcotest.int64 "copies replay identically" (Dsim.Rng.next_int64 a)
    (Dsim.Rng.next_int64 b)

let split_independence () =
  let parent = Dsim.Rng.create 3L in
  let child = Dsim.Rng.split parent in
  let child_vals = List.init 50 (fun _ -> Dsim.Rng.next_int64 child) in
  let parent_vals = List.init 50 (fun _ -> Dsim.Rng.next_int64 parent) in
  check Alcotest.bool "child differs from parent" true (child_vals <> parent_vals)

let split_deterministic () =
  let mk () =
    let p = Dsim.Rng.create 9L in
    let c1 = Dsim.Rng.split p in
    let c2 = Dsim.Rng.split p in
    (Dsim.Rng.next_int64 c1, Dsim.Rng.next_int64 c2)
  in
  check
    (Alcotest.pair Alcotest.int64 Alcotest.int64)
    "same splits from same seed" (mk ()) (mk ())

let int_rejects_bad_bound () =
  let r = Dsim.Rng.create 1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dsim.Rng.int r 0 : int));
  Alcotest.check_raises "negative bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Dsim.Rng.int r (-5) : int))

let int_in_rejects_empty_range () =
  let r = Dsim.Rng.create 1L in
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Dsim.Rng.int_in r 5 4 : int))

let bool_is_roughly_fair () =
  let r = Dsim.Rng.create 5L in
  let trues = ref 0 in
  let trials = 10_000 in
  for _ = 1 to trials do
    if Dsim.Rng.bool r then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int trials in
  check Alcotest.bool "between 45% and 55%" true (ratio > 0.45 && ratio < 0.55)

let exponential_positive () =
  let r = Dsim.Rng.create 6L in
  for _ = 1 to 1000 do
    let x = Dsim.Rng.exponential r ~mean:10.0 in
    check Alcotest.bool "non-negative" true (x >= 0.0)
  done

let exponential_mean_close () =
  let r = Dsim.Rng.create 8L in
  let trials = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to trials do
    sum := !sum +. Dsim.Rng.exponential r ~mean:10.0
  done;
  let mean = !sum /. float_of_int trials in
  check Alcotest.bool "mean within 10%" true (mean > 9.0 && mean < 11.0)

let pick_raises_on_empty () =
  let r = Dsim.Rng.create 1L in
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Dsim.Rng.pick r [||] : int));
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list")
    (fun () -> ignore (Dsim.Rng.pick_list r [] : int))

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int is within [0, bound)" ~count:1000
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let r = Dsim.Rng.create seed in
      let v = Dsim.Rng.int r bound in
      v >= 0 && v < bound)

let prop_int_in_range =
  QCheck.Test.make ~name:"int_in is within [lo, hi]" ~count:1000
    QCheck.(triple int64 (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let r = Dsim.Rng.create seed in
      let v = Dsim.Rng.int_in r lo (lo + width) in
      v >= lo && v <= lo + width)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:300
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let r = Dsim.Rng.create seed in
      let shuffled = Dsim.Rng.shuffle_list r l in
      List.sort compare shuffled = List.sort compare l)

let prop_float_bounds =
  QCheck.Test.make ~name:"float stays in [0, bound)" ~count:1000 QCheck.int64
    (fun seed ->
      let r = Dsim.Rng.create seed in
      let v = Dsim.Rng.float r 3.5 in
      v >= 0.0 && v < 3.5)

let suite =
  [
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "different seeds diverge" `Quick different_seeds;
    Alcotest.test_case "copy freezes state" `Quick copy_freezes_state;
    Alcotest.test_case "split independence" `Quick split_independence;
    Alcotest.test_case "split deterministic" `Quick split_deterministic;
    Alcotest.test_case "int rejects bad bound" `Quick int_rejects_bad_bound;
    Alcotest.test_case "int_in rejects empty range" `Quick int_in_rejects_empty_range;
    Alcotest.test_case "bool roughly fair" `Quick bool_is_roughly_fair;
    Alcotest.test_case "exponential positive" `Quick exponential_positive;
    Alcotest.test_case "exponential mean" `Quick exponential_mean_close;
    Alcotest.test_case "pick raises on empty" `Quick pick_raises_on_empty;
    qtest prop_int_in_bounds;
    qtest prop_int_in_range;
    qtest prop_shuffle_is_permutation;
    qtest prop_float_bounds;
  ]
