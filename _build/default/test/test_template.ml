(* Tests for the generic templates (paper Algorithms 1 and 2), driven by
   scripted mock objects so every control path is exercised exactly. *)

open Consensus.Types

let check = Alcotest.check

(* A scripted world: the detector and progress objects pop pre-planned
   responses and log every invocation. *)
type script = {
  mutable vac_outputs : int vac_result list;
  mutable ac_outputs : int ac_result list;
  mutable progress_outputs : int list;
  mutable log : string list;
}

let log s fmt = Printf.ksprintf (fun m -> s.log <- m :: s.log) fmt

let make_script ?(vac = []) ?(ac = []) ?(progress = []) () =
  { vac_outputs = vac; ac_outputs = ac; progress_outputs = progress; log = [] }

module Mock_vac = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round v =
    log s "vac r%d v%d" round v;
    match s.vac_outputs with
    | [] -> Alcotest.fail "vac script exhausted"
    | out :: rest ->
        s.vac_outputs <- rest;
        out
end

module Mock_reconciliator = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round detected =
    log s "recon r%d (%s)" round (vac_confidence detected);
    match s.progress_outputs with
    | [] -> Alcotest.fail "reconciliator script exhausted"
    | out :: rest ->
        s.progress_outputs <- rest;
        out
end

module Mock_ac = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round v =
    log s "ac r%d v%d" round v;
    match s.ac_outputs with
    | [] -> Alcotest.fail "ac script exhausted"
    | out :: rest ->
        s.ac_outputs <- rest;
        out
end

module Mock_conciliator = struct
  type ctx = script

  module Value = Consensus.Objects.Int_value

  let invoke s ~round detected =
    log s "conc r%d (%s)" round (ac_confidence detected);
    match s.progress_outputs with
    | [] -> Alcotest.fail "conciliator script exhausted"
    | out :: rest ->
        s.progress_outputs <- rest;
        out
end

module Vac_template = Consensus.Template.Make_vac (Mock_vac) (Mock_reconciliator)
module Ac_template = Consensus.Template.Make_ac (Mock_ac) (Mock_conciliator)

let script_log s = List.rev s.log

let vac_commit_immediately () =
  let s = make_script ~vac:[ Commit 7 ] () in
  let v, round = Vac_template.consensus s 1 in
  check Alcotest.int "decided value" 7 v;
  check Alcotest.int "round" 1 round;
  check (Alcotest.list Alcotest.string) "single invocation" [ "vac r1 v1" ]
    (script_log s)

let vac_adopt_carries_value () =
  let s = make_script ~vac:[ Adopt 3; Commit 3 ] () in
  let v, round = Vac_template.consensus s 1 in
  check Alcotest.int "decided" 3 v;
  check Alcotest.int "two rounds" 2 round;
  (* Round 2's input must be the adopted value, and the reconciliator is
     never invoked on adopt. *)
  check (Alcotest.list Alcotest.string) "no reconciliator"
    [ "vac r1 v1"; "vac r2 v3" ] (script_log s)

let vac_vacillate_invokes_reconciliator () =
  let s = make_script ~vac:[ Vacillate 1; Commit 9 ] ~progress:[ 9 ] () in
  let v, _ = Vac_template.consensus s 1 in
  check Alcotest.int "decided reconciliator's suggestion" 9 v;
  check (Alcotest.list Alcotest.string) "reconciliator between rounds"
    [ "vac r1 v1"; "recon r1 (vacillate)"; "vac r2 v9" ] (script_log s)

let vac_max_rounds_raises () =
  let s = make_script ~vac:[ Vacillate 1; Vacillate 1; Vacillate 1 ] ~progress:[ 1; 1; 1 ] () in
  Alcotest.check_raises "no decision" (Consensus.Template.No_decision 2) (fun () ->
      ignore (Vac_template.consensus ~max_rounds:2 s 1 : int * int))

let vac_observer_sequence () =
  let s = make_script ~vac:[ Adopt 2; Commit 2 ] () in
  let events = ref [] in
  let observer =
    {
      Consensus.Template.on_detect =
        (fun ~round r -> events := Printf.sprintf "detect r%d %s" round (vac_confidence r) :: !events);
      on_new_preference =
        (fun ~round v -> events := Printf.sprintf "pref r%d %d" round v :: !events);
      on_decide =
        (fun ~round v -> events := Printf.sprintf "decide r%d %d" round v :: !events);
    }
  in
  ignore (Vac_template.consensus ~observer s 1 : int * int);
  check (Alcotest.list Alcotest.string) "event order"
    [ "detect r1 adopt"; "pref r1 2"; "detect r2 commit"; "decide r2 2" ]
    (List.rev !events)

let vac_participating_reports_both () =
  let s =
    make_script
      ~vac:[ Commit 5; Adopt 6; Vacillate 6 ]
      ~progress:[ 7 ] ()
  in
  let result = Vac_template.consensus_participating ~rounds:3 s 1 in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "first commit"
    (Some (5, 1)) result.Consensus.Template.first_commit;
  check Alcotest.int "final preference from reconciliator" 7
    result.Consensus.Template.final_preference

let vac_participating_no_commit () =
  let s = make_script ~vac:[ Vacillate 1; Adopt 4 ] ~progress:[ 2 ] () in
  let result = Vac_template.consensus_participating ~rounds:2 s 1 in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "no commit" None
    result.Consensus.Template.first_commit;
  check Alcotest.int "final from adopt" 4 result.Consensus.Template.final_preference

let ac_commit_decides () =
  let s = make_script ~ac:[ AC_commit 8 ] () in
  let v, round = Ac_template.consensus s 1 in
  check Alcotest.int "decided" 8 v;
  check Alcotest.int "round" 1 round

let ac_adopt_asks_conciliator () =
  let s = make_script ~ac:[ AC_adopt 2; AC_commit 4 ] ~progress:[ 4 ] () in
  let v, round = Ac_template.consensus s 1 in
  check Alcotest.int "decided" 4 v;
  check Alcotest.int "rounds" 2 round;
  check (Alcotest.list Alcotest.string) "conciliator invoked on adopt"
    [ "ac r1 v1"; "conc r1 (adopt)"; "ac r2 v4" ] (script_log s)

let ac_participating_keeps_conciliator_in_loop () =
  (* In participating mode even a committed processor joins the
     conciliator exchange (lock-step substrates need every correct
     processor), but its preference stays the committed value. *)
  let s = make_script ~ac:[ AC_commit 5; AC_adopt 5 ] ~progress:[ 0; 0 ] () in
  let result = Ac_template.consensus_participating ~rounds:2 s 5 in
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int)) "first commit"
    (Some (5, 1)) result.Consensus.Template.first_commit;
  check (Alcotest.list Alcotest.string) "conciliator joined both rounds"
    [ "ac r1 v5"; "conc r1 (commit)"; "ac r2 v5"; "conc r2 (adopt)" ]
    (script_log s);
  (* Round 2's adopt sent it to the conciliator, whose suggestion (0) is
     taken — matching the original BGP where a weakly-supported processor
     follows the king even after an earlier strong round. *)
  check Alcotest.int "final preference" 0 result.Consensus.Template.final_preference

let ac_max_rounds_raises () =
  let s = make_script ~ac:[ AC_adopt 1; AC_adopt 1 ] ~progress:[ 1; 1 ] () in
  Alcotest.check_raises "no decision" (Consensus.Template.No_decision 2) (fun () ->
      ignore (Ac_template.consensus ~max_rounds:2 s 1 : int * int))

let suite =
  [
    Alcotest.test_case "VAC: commit decides" `Quick vac_commit_immediately;
    Alcotest.test_case "VAC: adopt carries value" `Quick vac_adopt_carries_value;
    Alcotest.test_case "VAC: vacillate -> reconciliator" `Quick
      vac_vacillate_invokes_reconciliator;
    Alcotest.test_case "VAC: max_rounds raises" `Quick vac_max_rounds_raises;
    Alcotest.test_case "VAC: observer sequence" `Quick vac_observer_sequence;
    Alcotest.test_case "VAC participating: both rules" `Quick vac_participating_reports_both;
    Alcotest.test_case "VAC participating: no commit" `Quick vac_participating_no_commit;
    Alcotest.test_case "AC: commit decides" `Quick ac_commit_decides;
    Alcotest.test_case "AC: adopt -> conciliator" `Quick ac_adopt_asks_conciliator;
    Alcotest.test_case "AC participating: conciliator in loop" `Quick
      ac_participating_keeps_conciliator_in_loop;
    Alcotest.test_case "AC: max_rounds raises" `Quick ac_max_rounds_raises;
  ]
