(* Byzantine cluster: Phase-King under an equivocating adversary.

   Ten processors, three of them Byzantine and controlled by a rushing
   camp-splitter strategy that sees the honest messages of each round
   before choosing its own, sends different values to different halves of
   the cluster, and floods the undecided sentinel during the second
   exchange.  The honest seven still agree within t+1 = 4 template rounds
   because round 4's king is honest.

   The run is shown twice: once through the AC + conciliator decomposition
   (paper Algorithms 2, 3, 4) and once through the original fused loop —
   and the trace shows they behave identically.

     dune exec examples/byzantine_cluster.exe *)

let run ~mode ~label =
  let n = 10 in
  let inputs = Array.init n (fun i -> i mod 2) in
  let cfg =
    {
      (Phase_king.Runner.default_config ~n ~inputs) with
      byzantine = [ 0; 4; 7 ];
      strategy = Phase_king.Strategies.camp_splitter;
      seed = 7L;
      mode;
    }
  in
  let report = Phase_king.Runner.run cfg in
  Format.printf "== %s ==@." label;
  List.iter
    (fun (p, v) -> Format.printf "  honest p%d decided %d@." p v)
    report.Phase_king.Runner.final_decisions;
  (match report.Phase_king.Runner.first_commits with
  | [] -> Format.printf "  (no round produced a commit-level detection)@."
  | commits ->
      List.iter
        (fun (p, v, m) ->
          Format.printf "  p%d detected commit-level agreement on %d in round %d@." p
            v m)
        commits);
  Format.printf "  %d lock-step rounds, ~%d messages@."
    report.Phase_king.Runner.sync_rounds report.Phase_king.Runner.messages;
  (match report.Phase_king.Runner.violations with
  | [] -> Format.printf "  adopt-commit coherence & convergence held in every round@."
  | vs ->
      List.iter
        (fun v -> Format.printf "  VIOLATION: %a@." Consensus.Monitor.pp_violation v)
        vs;
      exit 1);
  report.Phase_king.Runner.final_decisions

let () =
  let decomposed = run ~mode:Phase_king.Runner.Decomposed ~label:"AC + conciliator" in
  let monolithic = run ~mode:Phase_king.Runner.Monolithic ~label:"fused Phase-King" in
  if decomposed = monolithic then
    Format.printf "@.decomposed and monolithic runs decided identically@."
  else begin
    Format.printf "@.decomposed and monolithic runs DIVERGED@.";
    exit 1
  end
