(* Bring your own objects: the framework use case.

   The point of the paper is that consensus = a detector + a progress
   object, glued by one template.  This example implements a brand-new
   pair — a shared-memory VAC built from the repository's two adopt-commit
   objects (the Section-5 construction) and a coin-flip reconciliator —
   and plugs them into Algorithm 1 without touching any library internals.

     dune exec examples/custom_object.exe *)

module Engine = Dsim.Engine
module Sm = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value)
module Monitor = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

(* Our custom VAC: the generic two-AC construction applied to the two
   register-based adopt-commit instances. *)
module My_vac = Consensus.Constructions.Vac_of_two_ac (Sm.Ac_a) (Sm.Ac_b)

(* Our custom reconciliator: a local fair coin, Ben-Or style, but living
   in shared memory.  Note the signature is all a reconciliator needs. *)
module My_reconciliator = struct
  type ctx = Sm.ctx

  module Value = Consensus.Objects.Bool_value

  let invoke (ctx : ctx) ~round:_ _detected =
    Dsim.Rng.bool ctx.Sm.proc.Sharedmem.World.ectx.Engine.rng
end

(* One functor application later we have a consensus algorithm that did
   not exist before this file. *)
module My_consensus = Consensus.Template.Make_vac (My_vac) (My_reconciliator)

let () =
  let n = 6 in
  let eng = Engine.create ~seed:99L () in
  let world = Sharedmem.World.create eng () in
  let shared = Sm.create_shared ~n world in
  let monitor = Monitor.create () in
  let decisions = ref [] in
  for i = 0 to n - 1 do
    let input = i < 3 in
    Monitor.record_initial monitor ~pid:i input;
    ignore
      (Engine.spawn eng (fun ectx ->
           let ctx = { Sm.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
           let observer = Monitor.observer monitor ~pid:i in
           let value, round = My_consensus.consensus ~observer ctx input in
           decisions := (i, value, round) :: !decisions)
      : Engine.pid)
  done;
  (match Engine.run eng with
  | Engine.Quiescent -> ()
  | Engine.Deadlock _ | Engine.Time_limit | Engine.Event_limit ->
      Format.printf "simulation did not quiesce@.";
      exit 1);
  List.iter
    (fun (i, v, m) -> Format.printf "process %d decided %b in round %d@." i v m)
    (List.sort compare !decisions);
  Format.printf "%d register operations in total@." (Sm.register_operations shared);
  (* The monitor doesn't care that the objects are homemade: the VAC
     guarantees are checked exactly as for Ben-Or.  (Validity is checked
     against round inputs, which the coin flips feed, so it stays on.) *)
  match Monitor.check_vac monitor @ Monitor.check_consensus monitor with
  | [] -> Format.printf "custom VAC satisfied all guarantees@."
  | violations ->
      List.iter
        (fun v -> Format.printf "VIOLATION: %a@." Consensus.Monitor.pp_violation v)
        violations;
      exit 1
