(* A replicated key-value store on the Raft substrate.

   This example uses the full Raft machinery (leader election, log
   replication, repair) that the consensus reduction of paper Section 4.3
   is built on, the way a downstream system would: commands are
   "SET key value" strings, every replica applies committed commands to
   its own hash table, and the cluster survives a leader crash and a
   partition mid-stream.

     dune exec examples/raft_kv.exe *)

module Cluster = Raft.Cluster
module Replica = Raft.Replica

type store = (string, string) Hashtbl.t

let apply_command (store : store) cmd =
  match String.split_on_char ' ' cmd with
  | [ "SET"; key; value ] -> Hashtbl.replace store key value
  | _ -> Format.printf "ignoring malformed command %S@." cmd

let () =
  let n = 5 in
  let cl = Cluster.create ~seed:11L ~n () in
  let stores = Array.init n (fun _ -> (Hashtbl.create 16 : store)) in
  (* Wire each replica's state machine: rebuild from scratch on restart
     (committed entries are re-applied from index 1). *)
  Array.iteri
    (fun i r ->
      Replica.subscribe r (fun ev ->
          match ev with
          | Replica.Event.Applied { cmd; _ } -> apply_command stores.(i) cmd
          | Replica.Event.Restarted -> Hashtbl.reset stores.(i)
          | Replica.Event.Became_candidate _ | Replica.Event.Became_leader _
          | Replica.Event.Stepped_down _ | Replica.Event.Election_timeout _
          | Replica.Event.Accepted_entries _ | Replica.Event.Committed _
          | Replica.Event.Crashed ->
              ()))
    (Cluster.replicas cl);
  Cluster.start cl;

  let submit cmd =
    if not (Cluster.run_until cl (fun () -> Cluster.propose_via_leader cl cmd)) then
      failwith ("could not submit: " ^ cmd)
  in
  let await_commit index =
    let committed () =
      let live_done = ref 0 and live = ref 0 in
      Array.iter
        (fun r ->
          if not (Replica.is_stopped r) then begin
            incr live;
            if Replica.last_applied r >= index then incr live_done
          end)
        (Cluster.replicas cl);
      !live_done = !live
    in
    if not (Cluster.run_until cl committed) then failwith "commit timed out"
  in

  submit "SET currency OCaml";
  submit "SET paper object-oriented-consensus";
  await_commit 2;
  Format.printf "2 commands committed cluster-wide (t=%d)@."
    (Dsim.Engine.now (Cluster.engine cl));

  (* Crash the leader; the cluster elects a successor and keeps going. *)
  let leader = Option.get (Cluster.current_leader cl) in
  Cluster.crash cl leader;
  Format.printf "crashed leader p%d@." leader;
  submit "SET survivor true";
  await_commit 3;

  (* Heal the crashed node: it catches up through log repair. *)
  Cluster.restart cl leader;
  ignore
    (Cluster.run_until cl (fun () ->
         Replica.last_applied (Cluster.replica cl leader) >= 3)
    : bool);
  Format.printf "p%d restarted and caught up@." leader;

  (* Partition a minority away and commit through the majority side. *)
  Cluster.partition cl [ [ 0; 1; 2 ]; [ 3; 4 ] ];
  submit "SET partition tolerated";
  ignore
    (Cluster.run_until cl (fun () ->
         let done_ = ref 0 in
         Array.iter
           (fun r -> if Replica.last_applied r >= 4 then incr done_)
           (Cluster.replicas cl);
         !done_ >= 3)
    : bool);
  Cluster.heal cl;
  await_commit 4;
  Format.printf "partition healed; all replicas converged@.";

  (* Show the replicated state and check the Raft invariants. *)
  let reference = stores.(0) in
  Array.iteri
    (fun i store ->
      let same =
        Hashtbl.length store = Hashtbl.length reference
        && Hashtbl.fold
             (fun k v acc -> acc && Hashtbl.find_opt reference k = Some v)
             store true
      in
      Format.printf "replica %d: %d keys%s@." i (Hashtbl.length store)
        (if same then "" else " (DIVERGED)"))
    stores;
  match Cluster.violations cl @ Cluster.check_log_matching cl with
  | [] -> Format.printf "election safety, log matching and SMS all held@."
  | vs ->
      List.iter (Format.printf "VIOLATION: %s@.") vs;
      exit 1
