(* Quickstart: run one consensus with the paper's generic template.

   Eight processors with split inputs run Ben-Or's algorithm decomposed
   into a vacillate-adopt-commit object and a coin-flip reconciliator
   (paper Algorithms 1, 5 and 6) over a simulated asynchronous network,
   while a monitor checks every object guarantee on the fly.

     dune exec examples/quickstart.exe *)

module Engine = Dsim.Engine
module Net = Netsim.Async_net
module Monitor = Consensus.Monitor.Make (Consensus.Objects.Bool_value)

let () =
  let n = 8 in
  let eng = Engine.create ~seed:2026L () in
  let net = Net.create eng ~n ~retain_inbox:false () in
  let monitor = Monitor.create () in

  (* Spawn one simulated processor per node.  Each builds its protocol
     context and calls the template-produced [consensus]. *)
  for i = 0 to n - 1 do
    let input = i mod 2 = 0 in
    Monitor.record_initial monitor ~pid:i input;
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "proc-%d" i) (fun ectx ->
           let ctx =
             Ben_or.Protocol.make_ctx ~net ~me:i ~faults:3 ~rng:ectx.Engine.rng ()
           in
           let observer = Monitor.observer monitor ~pid:i in
           let value, round =
             Ben_or.Protocol.Consensus_decomposed.consensus ~observer ctx input
           in
           Format.printf "processor %d decided %b in round %d@." i value round)
      : Engine.pid)
  done;

  (* Crash two processors mid-run: Ben-Or tolerates t < n/2. *)
  Engine.schedule eng ~delay:15 (fun () ->
      Net.crash net 0;
      Engine.kill eng 0);
  Engine.schedule eng ~delay:40 (fun () ->
      Net.crash net 5;
      Engine.kill eng 5);

  (match Engine.run eng with
  | Engine.Quiescent -> ()
  | outcome ->
      Format.printf "unexpected outcome: %s@."
        (match outcome with
        | Engine.Deadlock _ -> "deadlock"
        | Engine.Time_limit -> "time limit"
        | Engine.Event_limit -> "event limit"
        | Engine.Quiescent -> assert false));

  Format.printf "virtual time: %d, messages sent: %d@." (Engine.now eng)
    (Net.messages_sent net);
  match Monitor.check_vac monitor @ Monitor.check_consensus monitor with
  | [] -> Format.printf "every VAC and consensus guarantee held@."
  | violations ->
      List.iter
        (fun v -> Format.printf "VIOLATION: %a@." Consensus.Monitor.pp_violation v)
        violations;
      exit 1
