examples/byzantine_cluster.ml: Array Consensus Format List Phase_king
