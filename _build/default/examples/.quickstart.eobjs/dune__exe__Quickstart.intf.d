examples/quickstart.mli:
