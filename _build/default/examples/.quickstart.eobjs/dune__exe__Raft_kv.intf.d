examples/raft_kv.mli:
