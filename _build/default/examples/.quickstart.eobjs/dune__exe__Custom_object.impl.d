examples/custom_object.ml: Consensus Dsim Format List Sharedmem
