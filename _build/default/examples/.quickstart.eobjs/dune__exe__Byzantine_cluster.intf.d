examples/byzantine_cluster.mli:
