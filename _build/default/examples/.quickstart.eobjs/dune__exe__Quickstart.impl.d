examples/quickstart.ml: Ben_or Consensus Dsim Format List Netsim Printf
