examples/custom_object.mli:
