examples/raft_kv.ml: Array Dsim Format Hashtbl List Option Raft String
