(* oocon — object-oriented consensus CLI.

   Run any of the repository's consensus algorithms under simulated
   adversity, inspect traces, or regenerate the experiment tables. *)

open Cmdliner

let seed_arg =
  let doc = "Deterministic simulation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let show_trace_arg =
  let doc = "Dump the last N structured trace events after the run." in
  Arg.(value & opt int 0 & info [ "show-trace" ] ~docv:"N" ~doc)

let dump_trace ~limit trace =
  if limit > 0 then begin
    let tail = Dsim.Trace.last trace limit in
    Format.printf "@.--- trace (last %d of %d events) ---@." (List.length tail)
      (Dsim.Trace.length trace);
    List.iter (fun ev -> Format.printf "%a@." Dsim.Trace.pp_event ev) tail
  end

let n_arg default =
  let doc = "Number of processors." in
  Arg.(value & opt int default & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains to fan independent runs over (1 = sequential; 0 = one \
     per core).  Results are identical at every job count."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc)

let resolve_jobs jobs = if jobs = 0 then Exec.Pool.cores () else jobs

let split_inputs n = Array.init n (fun i -> i mod 2 = 0)

(* ------------------------------------------------------------- ben-or -- *)

let benor_cmd =
  let mode_arg =
    let doc = "Implementation: $(b,decomposed) (VAC+reconciliator template) or $(b,monolithic)." in
    Arg.(
      value
      & opt (enum [ ("decomposed", Ben_or.Runner.Decomposed); ("monolithic", Ben_or.Runner.Monolithic) ])
          Ben_or.Runner.Decomposed
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let crashes_arg =
    let doc = "Number of processors to crash (staggered early in the run)." in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"K" ~doc)
  in
  let unanimous_arg =
    let doc = "All processors start with the same input (default: even split)." in
    Arg.(value & flag & info [ "unanimous" ] ~doc)
  in
  let coin_arg =
    let doc =
      "Use a weak common coin with this per-round agreement probability as the \
       reconciliator (default: the paper's private coin flips)."
    in
    Arg.(value & opt (some float) None & info [ "common-coin" ] ~docv:"DELTA" ~doc)
  in
  let run n seed mode crashes unanimous common_coin show_trace =
    let inputs = if unanimous then Array.make n true else split_inputs n in
    let crash_schedule = List.init crashes (fun k -> (10 + (13 * k), 2 * k)) in
    let cfg =
      {
        (Ben_or.Runner.default_config ~n ~inputs) with
        seed = Int64.of_int seed;
        mode;
        crash_schedule;
        common_coin;
      }
    in
    let r = Ben_or.Runner.run cfg in
    Format.printf "Ben-Or n=%d seed=%d crashes=%d@." n seed (List.length r.crashed);
    List.iter
      (fun (p, v, m) -> Format.printf "  p%d decided %b in round %d@." p v m)
      r.decisions;
    Format.printf "virtual time %d, %d messages sent, %d delivered@." r.virtual_time
      r.messages_sent r.messages_delivered;
    (match r.violations with
    | [] -> Format.printf "all object and consensus guarantees hold@."
    | vs ->
        Format.printf "VIOLATIONS:@.";
        List.iter (fun v -> Format.printf "  %a@." Consensus.Monitor.pp_violation v) vs);
    dump_trace ~limit:show_trace r.trace;
    if r.violations <> [] then exit 1
  in
  let term =
    Term.(
      const run $ n_arg 8 $ seed_arg $ mode_arg $ crashes_arg $ unanimous_arg
      $ coin_arg $ show_trace_arg)
  in
  Cmd.v (Cmd.info "ben-or" ~doc:"Run Ben-Or's randomized consensus (async, crash faults).") term

(* --------------------------------------------------------- phase-king -- *)

let phase_king_cmd =
  let strategy_arg =
    let strategies =
      [
        ("silent", `Silent);
        ("random", `Random);
        ("split-world", `Split);
        ("camp-splitter", `Camp);
        ("vote-inflater", `Inflate);
      ]
    in
    let doc = "Byzantine strategy: silent, random, split-world, camp-splitter, vote-inflater." in
    Arg.(value & opt (enum strategies) `Camp & info [ "strategy" ] ~docv:"STRAT" ~doc)
  in
  let mode_arg =
    let doc = "Implementation: $(b,decomposed) (AC+conciliator template) or $(b,monolithic)." in
    Arg.(
      value
      & opt
          (enum
             [ ("decomposed", Phase_king.Runner.Decomposed); ("monolithic", Phase_king.Runner.Monolithic) ])
          Phase_king.Runner.Decomposed
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let algorithm_arg =
    let doc = "Royal flavour: $(b,king) (3t < n, 3 rounds/phase) or $(b,queen) (4t < n, 2 rounds/phase)." in
    Arg.(
      value
      & opt (enum [ ("king", Phase_king.Runner.King); ("queen", Phase_king.Runner.Queen) ])
          Phase_king.Runner.King
      & info [ "algorithm" ] ~docv:"ALGO" ~doc)
  in
  let run n seed strategy mode algorithm =
    let strategy =
      match strategy with
      | `Silent -> Netsim.Byzantine.silent
      | `Random -> Netsim.Byzantine.random_of [| 0; 1; 2 |]
      | `Split -> Netsim.Byzantine.split_world 0 1
      | `Camp -> Phase_king.Strategies.camp_splitter
      | `Inflate -> Phase_king.Strategies.vote_inflater 1
    in
    let inputs = Array.init n (fun i -> i mod 2) in
    let base =
      match algorithm with
      | Phase_king.Runner.King -> Phase_king.Runner.default_config ~n ~inputs
      | Phase_king.Runner.Queen -> Phase_king.Runner.default_queen_config ~n ~inputs
    in
    let cfg = { base with seed = Int64.of_int seed; strategy; mode } in
    let r = Phase_king.Runner.run cfg in
    Format.printf "Phase-%s n=%d t=%d strategy=%s@."
      (match algorithm with Phase_king.Runner.King -> "King" | Queen -> "Queen")
      n cfg.Phase_king.Runner.faults strategy.Netsim.Sync_net.strategy_name;
    List.iter
      (fun (p, v) -> Format.printf "  p%d decided %d after %d rounds@." p v r.template_rounds)
      r.final_decisions;
    List.iter
      (fun (p, v, m) -> Format.printf "  (p%d first committed %d in round %d)@." p v m)
      r.first_commits;
    Format.printf "%d lock-step rounds, ~%d messages@." r.sync_rounds r.messages;
    (match r.violations with
    | [] -> Format.printf "all object and consensus guarantees hold@."
    | vs ->
        Format.printf "VIOLATIONS:@.";
        List.iter (fun v -> Format.printf "  %a@." Consensus.Monitor.pp_violation v) vs);
    if r.violations <> [] then exit 1
  in
  let term =
    Term.(const run $ n_arg 7 $ seed_arg $ strategy_arg $ mode_arg $ algorithm_arg)
  in
  Cmd.v
    (Cmd.info "phase-king"
       ~doc:"Run Phase-King or Phase-Queen Byzantine consensus (synchronous).")
    term

(* --------------------------------------------------------------- raft -- *)

let raft_cmd =
  let fault_arg =
    let doc = "Fault plan: none, crash-leader, crash-restart, partition." in
    Arg.(
      value
      & opt (enum [ ("none", `None); ("crash-leader", `Crash); ("crash-restart", `Restart); ("partition", `Partition) ]) `None
      & info [ "fault" ] ~docv:"FAULT" ~doc)
  in
  let run n seed fault show_trace =
    let cl = Raft.Cluster.create ~seed:(Int64.of_int seed) ~n () in
    let inputs = Array.init n (fun i -> 100 + i) in
    let cons = Raft.Consensus_raft.create ~cluster:cl ~inputs in
    Raft.Cluster.start cl;
    ignore (Raft.Cluster.run_until cl (fun () -> Raft.Cluster.current_leader cl <> None) : bool);
    (match (fault, Raft.Cluster.current_leader cl) with
    | `None, _ | _, None -> ()
    | `Crash, Some l -> Raft.Cluster.crash cl l
    | `Restart, Some l ->
        Raft.Cluster.crash cl l;
        Dsim.Engine.schedule (Raft.Cluster.engine cl) ~delay:2000 (fun () ->
            Raft.Cluster.restart cl l)
    | `Partition, Some l ->
        let others = List.filter (fun i -> i <> l) (List.init n Fun.id) in
        Raft.Cluster.partition cl [ [ l ]; others ];
        Dsim.Engine.schedule (Raft.Cluster.engine cl) ~delay:3000 (fun () ->
            Raft.Cluster.heal cl));
    let all = Raft.Consensus_raft.run_until_all_decided ~timeout:300_000 cons in
    Format.printf "Raft n=%d seed=%d: all live replicas decided: %b (t=%d)@." n seed all
      (Dsim.Engine.now (Raft.Cluster.engine cl));
    List.iter
      (fun (p, v) -> Format.printf "  p%d decided %d@." p v)
      (Raft.Consensus_raft.decisions cons);
    Format.printf "leaders by term: %s@."
      (String.concat ", "
         (List.map
            (fun (t, l) -> Printf.sprintf "t%d->p%d" t l)
            (Raft.Cluster.leaders_by_term cl)));
    Format.printf "timer-reconciliator invocations: %d@."
      (List.length (Raft.Consensus_raft.reconciliator_invocations cons));
    let problems =
      Raft.Cluster.violations cl
      @ Raft.Cluster.check_log_matching cl
      @ Raft.Consensus_raft.check_vac_view cons
    in
    (match problems with
    | [] -> Format.printf "all Raft invariants and VAC-view guarantees hold@."
    | ps ->
        Format.printf "VIOLATIONS:@.";
        List.iter (Format.printf "  %s@.") ps);
    dump_trace ~limit:show_trace (Dsim.Engine.trace (Raft.Cluster.engine cl));
    if problems <> [] then exit 1
  in
  let term = Term.(const run $ n_arg 5 $ seed_arg $ fault_arg $ show_trace_arg) in
  Cmd.v (Cmd.info "raft" ~doc:"Run consensus through Raft with the D&S(v) command.") term

(* --------------------------------------------------------- sharedmem -- *)

let sharedmem_cmd =
  let run n seed =
    let module P = Sharedmem.Protocol.Make (Consensus.Objects.Bool_value) in
    let module M = Consensus.Monitor.Make (Consensus.Objects.Bool_value) in
    let eng = Dsim.Engine.create ~seed:(Int64.of_int seed) () in
    let world = Sharedmem.World.create eng () in
    let shared = P.create_shared ~n world in
    let monitor = M.create () in
    let decisions = ref [] in
    for i = 0 to n - 1 do
      let input = i mod 2 = 0 in
      M.record_initial monitor ~pid:i input;
      ignore
        (Dsim.Engine.spawn eng (fun ectx ->
             let ctx = { P.shared; proc = { Sharedmem.World.world; me = i; ectx } } in
             let observer = M.observer monitor ~pid:i in
             let v, m = P.Consensus_sm.consensus ~observer ctx input in
             decisions := (i, v, m) :: !decisions)
        : Dsim.Engine.pid)
    done;
    ignore (Dsim.Engine.run eng : Dsim.Engine.outcome);
    Format.printf "Shared-memory consensus (Gafni AC + Aspnes conciliator) n=%d@." n;
    List.iter
      (fun (p, v, m) -> Format.printf "  p%d decided %b in round %d@." p v m)
      (List.rev !decisions);
    Format.printf "%d register operations@." (P.register_operations shared);
    let problems = M.check_ac monitor @ M.check_consensus monitor in
    (match problems with
    | [] -> Format.printf "all object and consensus guarantees hold@."
    | ps ->
        Format.printf "VIOLATIONS:@.";
        List.iter (fun v -> Format.printf "  %a@." Consensus.Monitor.pp_violation v) ps);
    if problems <> [] then exit 1
  in
  let term = Term.(const run $ n_arg 6 $ seed_arg) in
  Cmd.v
    (Cmd.info "sharedmem"
       ~doc:"Run wait-free shared-memory consensus (registers, Aspnes' framework).")
    term

(* ---------------------------------------------------------------- rsm -- *)

let rsm_cmd =
  let backend_arg =
    let doc = "Consensus backend deciding each log slot: ben-or, phase-king, raft." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ben-or", Rsm.Backend.ben_or);
               ("phase-king", Rsm.Backend.phase_king);
               ("raft", Rsm.Backend.raft);
             ])
          Rsm.Backend.ben_or
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let clients_arg =
    let doc = "Closed-loop clients driving the store." in
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"K" ~doc)
  in
  let commands_arg =
    let doc = "Commands per client." in
    Arg.(value & opt int 8 & info [ "commands" ] ~docv:"M" ~doc)
  in
  let crashes_arg =
    let doc = "Replicas to crash-stop (staggered early in the run)." in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"F" ~doc)
  in
  let batch_arg =
    let doc = "Max commands batched into one consensus slot." in
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let run n seed backend clients commands crashes batch show_trace =
    if crashes >= n then begin
      Format.eprintf "need at least one live replica (crashes < n)@.";
      exit 2
    end;
    if batch < 1 then begin
      Format.eprintf "batch must be >= 1@.";
      exit 2
    end;
    let r, s =
      Workload.Rsm_load.run_one ~n ~clients ~commands ~batch ~crashes ~seed
        ~backend ()
    in
    Format.printf "RSM over %s: n=%d clients=%d x %d cmds batch=%d seed=%d@."
      s.Workload.Rsm_load.backend_name n clients commands batch seed;
    Format.printf
      "  %d/%d commands acked, %d slots, %d consensus instances, %d messages@."
      s.Workload.Rsm_load.acked s.Workload.Rsm_load.commands
      s.Workload.Rsm_load.slots s.Workload.Rsm_load.instances
      s.Workload.Rsm_load.messages;
    (match r.Rsm.Runner.crashed with
    | [] -> ()
    | cs ->
        Format.printf "  crashed: %s@."
          (String.concat ", " (List.map (Printf.sprintf "p%d") cs)));
    Array.iteri
      (fun pid count ->
        Format.printf "  p%d applied %d commands%s@." pid count
          (if List.mem pid r.Rsm.Runner.crashed then " (crashed)" else ""))
      r.Rsm.Runner.delivered;
    Format.printf "  throughput %.1f cmds/1000vt over %d virtual time@."
      s.Workload.Rsm_load.throughput s.Workload.Rsm_load.virtual_time;
    Option.iter
      (fun l -> Format.printf "  ack latency %a@." Workload.Stats.pp_summary l)
      s.Workload.Rsm_load.latency;
    let problems = r.Rsm.Runner.violations @ r.Rsm.Runner.completeness in
    (match problems with
    | [] when r.Rsm.Runner.digests_agree ->
        Format.printf
          "total order, integrity, no-duplication and completeness all hold; \
           live replicas' states agree@."
    | [] ->
        Format.printf "VIOLATION: live replicas' state digests diverge@."
    | vs ->
        Format.printf "VIOLATIONS:@.";
        List.iter (fun v -> Format.printf "  %a@." Rsm.Checker.pp_violation v) vs);
    dump_trace ~limit:show_trace r.Rsm.Runner.trace;
    if problems <> [] || not r.Rsm.Runner.digests_agree then exit 1
  in
  let term =
    Term.(
      const run $ n_arg 5 $ seed_arg $ backend_arg $ clients_arg $ commands_arg
      $ crashes_arg $ batch_arg $ show_trace_arg)
  in
  Cmd.v
    (Cmd.info "rsm"
       ~doc:
         "Run the replicated KV state machine: total-order broadcast over a \
          log of consensus slots, any backend.")
    term

(* -------------------------------------------------------------- store -- *)

let store_cmd =
  let backend_arg =
    let doc = "Consensus backend deciding each log slot: ben-or, phase-king, raft." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ben-or", Rsm.Backend.ben_or);
               ("phase-king", Rsm.Backend.phase_king);
               ("raft", Rsm.Backend.raft);
             ])
          Rsm.Backend.ben_or
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let clients_arg =
    let doc = "Closed-loop clients driving the store." in
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"K" ~doc)
  in
  let commands_arg =
    let doc = "Commands per client." in
    Arg.(value & opt int 5 & info [ "commands" ] ~docv:"M" ~doc)
  in
  let crashes_arg =
    let doc = "Replicas to crash (staggered early in the run)." in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"F" ~doc)
  in
  let restart_after_arg =
    let doc =
      "Restart each crashed replica this much virtual time after its crash \
       (crash-recovery through real WAL replay; default: crashed replicas \
       stay down)."
    in
    Arg.(value & opt (some int) None & info [ "restart-after" ] ~docv:"T" ~doc)
  in
  let snapshot_every_arg =
    let doc = "Snapshot + compact every this many non-empty slots (0 = never)." in
    Arg.(value & opt int 4 & info [ "snapshot-every" ] ~docv:"S" ~doc)
  in
  let ack_before_fsync_arg =
    let doc =
      "Deliberately broken store: ack commands at delivery, before their WAL \
       records are durable.  Exists to demonstrate the durability audit."
    in
    Arg.(value & flag & info [ "ack-before-fsync" ] ~doc)
  in
  let plan_file_arg =
    let doc = "Inject this nemesis plan (storage-fault actions welcome)." in
    Arg.(value & opt (some file) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let dump_wal_arg =
    let doc = "Dump every replica's durable WAL records after the run." in
    Arg.(value & flag & info [ "dump-wal" ] ~doc)
  in
  let run n seed backend clients commands crashes restart_after snapshot_every
      ack_before_fsync plan_file dump_wal show_trace =
    if crashes >= n then begin
      Format.eprintf "need at least one live replica (crashes < n)@.";
      exit 2
    end;
    let inject =
      Option.map
        (fun file ->
          let text = In_channel.with_open_text file In_channel.input_all in
          let plan =
            try Nemesis.Plan.of_string text
            with Nemesis.Plan.Parse_error msg ->
              Format.eprintf "cannot parse plan %s: %s@." file msg;
              exit 2
          in
          (match Nemesis.Plan.validate ~n plan with
          | [] -> ()
          | problems ->
              Format.eprintf "ill-formed plan %s:@." file;
              List.iter (Format.eprintf "  %s@.") problems;
              exit 2);
          Nemesis.Interp.install_rsm plan)
        plan_file
    in
    let store =
      {
        Rsm.Runner.default_store_config with
        Rsm.Runner.snapshot_every;
        ack_before_fsync;
      }
    in
    let r, s =
      Workload.Rsm_load.run_one ~n ~clients ~commands ~batch:4 ~crashes
        ?restart_after ~seed ?inject ~store ~backend ()
    in
    Format.printf "Durable RSM over %s: n=%d clients=%d x %d cmds seed=%d%s@."
      s.Workload.Rsm_load.backend_name n clients commands seed
      (if ack_before_fsync then " (BROKEN: ack-before-fsync)" else "");
    Format.printf "  %d/%d commands acked, %d slots, vt %d@."
      s.Workload.Rsm_load.acked s.Workload.Rsm_load.commands
      s.Workload.Rsm_load.slots s.Workload.Rsm_load.virtual_time;
    Array.iteri
      (fun pid (disk : Store.Disk.t) ->
        let st = Store.Disk.stats disk in
        Format.printf "  p%d disk: %a@." pid Store.Disk.pp_stats st;
        (match Store.Disk.latest_snapshot disk with
        | Some snap ->
            Format.printf "    snapshot chain (%d): latest %a@."
              (List.length (Store.Disk.snapshots disk))
              Store.Disk.pp_snapshot snap
        | None -> Format.printf "    no snapshot@.");
        if dump_wal then
          List.iter
            (fun rec_ -> Format.printf "    %a@." Store.Disk.pp_record rec_)
            (Store.Disk.records disk))
      r.Rsm.Runner.disks;
    let problems =
      r.Rsm.Runner.violations @ r.Rsm.Runner.completeness
      @ r.Rsm.Runner.durability
    in
    (match problems with
    | [] when r.Rsm.Runner.digests_agree ->
        Format.printf
          "total order, completeness and durability all hold; live replicas' \
           states agree@."
    | [] -> Format.printf "VIOLATION: live replicas' state digests diverge@."
    | vs ->
        Format.printf "VIOLATIONS:@.";
        List.iter (fun v -> Format.printf "  %a@." Rsm.Checker.pp_violation v) vs);
    dump_trace ~limit:show_trace r.Rsm.Runner.trace;
    if problems <> [] || not r.Rsm.Runner.digests_agree then exit 1
  in
  let term =
    Term.(
      const run $ n_arg 5 $ seed_arg $ backend_arg $ clients_arg $ commands_arg
      $ crashes_arg $ restart_after_arg $ snapshot_every_arg
      $ ack_before_fsync_arg $ plan_file_arg $ dump_wal_arg $ show_trace_arg)
  in
  Cmd.v
    (Cmd.info "store"
       ~doc:
         "Run the RSM on simulated stable storage (per-replica WAL + \
          snapshots), inspect the WAL and snapshot chains, and audit \
          durability: every acked command must survive crash-recovery.")
    term

(* ------------------------------------------------------------ nemesis -- *)

let nemesis_cmd =
  let backends_arg =
    let doc = "Backend(s) to campaign against: ben-or, phase-king, raft, all." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ben-or", [ Rsm.Backend.ben_or ]);
               ("phase-king", [ Rsm.Backend.phase_king ]);
               ("raft", [ Rsm.Backend.raft ]);
               ("all", Rsm.Backend.all);
             ])
          [ Rsm.Backend.ben_or ]
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let plans_arg =
    let doc = "Seeded random fault plans per backend." in
    Arg.(value & opt int 50 & info [ "plans" ] ~docv:"P" ~doc)
  in
  let clients_arg =
    let doc = "Closed-loop clients driving the store." in
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"K" ~doc)
  in
  let commands_arg =
    let doc = "Commands per client." in
    Arg.(value & opt int 3 & info [ "commands" ] ~docv:"M" ~doc)
  in
  let batch_arg =
    let doc = "Max commands batched into one consensus slot." in
    Arg.(value & opt int 4 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let max_actions_arg =
    let doc = "Max fault actions per generated plan." in
    Arg.(value & opt int 10 & info [ "max-actions" ] ~docv:"A" ~doc)
  in
  let max_down_arg =
    let doc =
      "Max simultaneously crashed replicas (default a minority; set to N to \
       deliberately under-provision)."
    in
    Arg.(value & opt (some int) None & info [ "max-down" ] ~docv:"D" ~doc)
  in
  let horizon_arg =
    let doc = "Virtual-time window fault actions are placed in." in
    Arg.(value & opt int 800 & info [ "horizon" ] ~docv:"H" ~doc)
  in
  let benign_arg =
    let doc =
      "Generate quiet-horizon plans only: every crash restarted and every \
       partition healed before the horizon."
    in
    Arg.(value & flag & info [ "benign" ] ~doc)
  in
  let plan_file_arg =
    let doc = "Replay this plan file (skips generation; one run per backend)." in
    Arg.(value & opt (some file) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let dump_arg =
    let doc = "Write the offending plan (shrunk if --shrink) to this file." in
    Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)
  in
  let shrink_arg =
    let doc = "On failure, shrink the first failing plan to a local minimum." in
    Arg.(value & flag & info [ "shrink" ] ~doc)
  in
  let quiet_arg =
    let doc = "No per-run progress dots." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let storage_arg =
    let doc =
      "Give every run a WAL-backed store, let generated plans draw storage \
       faults (torn writes, sync-tail loss, io errors, stalls), and audit \
       durability: acked commands must survive at the live replicas."
    in
    Arg.(value & flag & info [ "storage-faults" ] ~doc)
  in
  let report_out_arg =
    let doc =
      "Write the campaign report, minus timing figures, to this file — \
       byte-identical across job counts, so two runs can be diffed."
    in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let run n seed backends plans clients commands batch max_actions max_down
      horizon benign storage plan_file dump shrink quiet jobs report_out
      show_trace =
    let base = Nemesis.Campaign.default_config ~n () in
    let profile =
      {
        (Nemesis.Gen.default ~n) with
        horizon;
        max_actions;
        benign;
        max_down =
          Option.value max_down ~default:(Nemesis.Gen.default ~n).max_down;
      }
    in
    let cfg =
      {
        base with
        Nemesis.Campaign.backends;
        plans;
        first_seed = seed;
        clients;
        commands;
        batch;
        profile;
        storage;
      }
    in
    let write_plan file plan =
      let oc = open_out file in
      output_string oc (Nemesis.Plan.to_string plan);
      close_out oc;
      Format.printf "plan written to %s@." file
    in
    match plan_file with
    | Some file ->
        (* Single-plan replay mode. *)
        let text = In_channel.with_open_text file In_channel.input_all in
        let plan =
          try Nemesis.Plan.of_string text
          with Nemesis.Plan.Parse_error msg ->
            Format.eprintf "cannot parse plan %s: %s@." file msg;
            exit 2
        in
        (match Nemesis.Plan.validate ~n plan with
        | [] -> ()
        | problems ->
            Format.eprintf "ill-formed plan %s:@." file;
            List.iter (Format.eprintf "  %s@.") problems;
            exit 2);
        Format.printf "replaying %s (%d actions) at seed %d:@.%a" file
          (Nemesis.Plan.length plan) seed Nemesis.Plan.pp plan;
        let any_unsafe = ref false in
        List.iter
          (fun backend ->
            let r = Nemesis.Campaign.run_plan cfg ~backend ~seed plan in
            let safe = Nemesis.Campaign.safety_ok r in
            let live = Nemesis.Campaign.complete r in
            let durable = Nemesis.Campaign.durable_ok r in
            if (not safe) || not durable then any_unsafe := true;
            Format.printf
              "%-12s %d/%d acked, %d slots, vt %d — safety %s, complete %s, \
               durable %s@."
              (Rsm.Backend.name backend) r.Rsm.Runner.acked
              r.Rsm.Runner.submitted r.Rsm.Runner.slots r.Rsm.Runner.virtual_time
              (if safe then "ok" else "VIOLATED")
              (if live then "yes" else "NO")
              (if durable then "yes" else "VIOLATED");
            List.iter
              (fun v -> Format.printf "  %a@." Rsm.Checker.pp_violation v)
              (r.Rsm.Runner.violations @ r.Rsm.Runner.completeness
             @ r.Rsm.Runner.durability);
            dump_trace ~limit:show_trace r.Rsm.Runner.trace)
          backends;
        if !any_unsafe then exit 1
    | None ->
        let on_outcome (o : Nemesis.Campaign.outcome) =
          if not quiet then begin
            print_char
              (if not o.safety then 'X' else if not o.live then '!' else '.');
            flush stdout
          end
        in
        let report =
          Nemesis.Campaign.run ~jobs:(resolve_jobs jobs) ~on_outcome cfg
        in
        if not quiet then print_newline ();
        Format.printf "%a" Nemesis.Campaign.pp_report report;
        Option.iter
          (fun file ->
            Out_channel.with_open_text file (fun oc ->
                let ppf = Format.formatter_of_out_channel oc in
                Nemesis.Campaign.pp_report_stable ppf report;
                Format.pp_print_flush ppf ());
            Format.printf "stable report written to %s@." file)
          report_out;
        let failing, predicate =
          match
            (report.safety_failures, report.durability_failures,
             report.incomplete)
          with
          | o :: _, _, _ ->
              (Some o, fun r -> not (Nemesis.Campaign.safety_ok r))
          | [], o :: _, _ ->
              (Some o, fun r -> not (Nemesis.Campaign.durable_ok r))
          | [], [], o :: _ ->
              (Some o, fun r -> not (Nemesis.Campaign.complete r))
          | [], [], [] -> (None, fun _ -> false)
        in
        Option.iter
          (fun (o : Nemesis.Campaign.outcome) ->
            let backend =
              List.find
                (fun b -> Rsm.Backend.name b = o.backend_name)
                Rsm.Backend.all
            in
            Format.printf "@.first failing plan (%s, seed %d):@.%a"
              o.backend_name o.plan_seed Nemesis.Plan.pp o.plan;
            let final_plan =
              if shrink then begin
                let oracle =
                  {
                    Nemesis.Shrink.run =
                      (fun p ->
                        Nemesis.Campaign.run_plan cfg ~backend ~seed:o.plan_seed p);
                    failing = predicate;
                  }
                in
                let s = Nemesis.Shrink.shrink oracle o.plan in
                Format.printf
                  "@.shrunk %d -> %d actions in %d replays:@.%a" s.reduced_from
                  (Nemesis.Plan.length s.plan) s.replays Nemesis.Plan.pp s.plan;
                s.plan
              end
              else o.plan
            in
            Option.iter (fun file -> write_plan file final_plan) dump)
          failing;
        if report.safety_failures <> [] || report.durability_failures <> []
        then exit 1
  in
  let term =
    Term.(
      const run $ n_arg 5 $ seed_arg $ backends_arg $ plans_arg $ clients_arg
      $ commands_arg $ batch_arg $ max_actions_arg $ max_down_arg $ horizon_arg
      $ benign_arg $ storage_arg $ plan_file_arg $ dump_arg $ shrink_arg
      $ quiet_arg $ jobs_arg $ report_out_arg $ show_trace_arg)
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Fault-injection campaigns against the RSM: generate seeded random \
          fault plans, audit every run with the total-order checker, shrink \
          failing plans to minimal counterexamples.")
    term

(* ------------------------------------------------------------- detect -- *)

let detect_cmd =
  let period_arg =
    let doc = "Heartbeat period (virtual time)." in
    Arg.(
      value
      & opt int Detect.Timeout.default.Detect.Timeout.period
      & info [ "period" ] ~docv:"T" ~doc)
  in
  let timeout_arg =
    let doc = "Initial suspicion timeout (grows adaptively on each suspicion)." in
    Arg.(
      value
      & opt int Detect.Timeout.default.Detect.Timeout.initial
      & info [ "timeout" ] ~docv:"T" ~doc)
  in
  let cap_arg =
    let doc = "Upper bound the adaptive timeout saturates at." in
    Arg.(
      value
      & opt int Detect.Timeout.default.Detect.Timeout.cap
      & info [ "cap" ] ~docv:"T" ~doc)
  in
  let mutant_arg =
    let doc =
      "Replace the honest detector with a lying mutant: $(b,false-suspect) \
       permanently suspects node 0 (a correct process — the backend must \
       still decide, routing around it), $(b,rotate) names a different \
       leader on every query (liveness is lost; safety must survive)."
    in
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("false-suspect", Detect.Oracle.False_suspect 0);
                  ("rotate", Detect.Oracle.Rotating);
                ]))
          None
      & info [ "broken-detector" ] ~docv:"MUTANT" ~doc)
  in
  let expect_violation_arg =
    let doc =
      "Invert the liveness exit code: succeed only when liveness IS lost \
       (mutant gates in CI).  A safety violation is never expected — a \
       lying detector must not break agreement, so that still fails, with \
       exit code 2."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let campaign_arg =
    let doc =
      "Sweep generated fault plans instead of a single run (see --plans)."
    in
    Arg.(value & flag & info [ "campaign" ] ~doc)
  in
  let plans_arg =
    let doc = "Seeded random fault plans in --campaign mode." in
    Arg.(value & opt int 50 & info [ "plans" ] ~docv:"P" ~doc)
  in
  let horizon_arg =
    let doc = "Virtual-time window fault actions are placed in." in
    Arg.(value & opt int 800 & info [ "horizon" ] ~docv:"H" ~doc)
  in
  let plan_file_arg =
    let doc = "Inject this plan file into a single run." in
    Arg.(value & opt (some file) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let quiet_arg =
    let doc = "No per-run progress dots in --campaign mode." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let report_out_arg =
    let doc =
      "Write the campaign report, minus timing figures, to this file — \
       byte-identical across job counts, so two runs can be diffed."
    in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let run n seed period timeout cap mutant expect_violation campaign plans
      horizon plan_file quiet jobs report_out show_trace =
    let params =
      { Detect.Timeout.default with Detect.Timeout.period; initial = timeout; cap }
    in
    if not (Detect.Timeout.valid params) then begin
      Format.eprintf "invalid detector parameters@.";
      exit 2
    end;
    let mutant_v = Option.value mutant ~default:Detect.Oracle.Honest in
    (* Safety is unconditional: even a lying detector breaking agreement
       is a bug in the backend, never an "expected" violation. *)
    let finish ~safety_ok ~liveness_ok =
      if not safety_ok then begin
        if mutant <> None then
          Format.eprintf "lying detector must not break safety@.";
        exit (if mutant <> None then 2 else 1)
      end;
      if expect_violation then
        if liveness_ok then begin
          Format.eprintf "no liveness violation found but one was expected@.";
          exit 1
        end
        else begin
          Format.printf "expected liveness violation found (safety intact)@.";
          exit 0
        end
      else if not liveness_ok then exit 1
    in
    if campaign then begin
      let cfg =
        {
          (Nemesis.Detect_campaign.default_config ~n ()) with
          Nemesis.Detect_campaign.plans;
          first_seed = seed;
          params = [ params ];
          mutant = mutant_v;
          profile = { (Nemesis.Gen.default ~n) with Nemesis.Gen.horizon };
        }
      in
      let on_outcome (o : Nemesis.Detect_campaign.outcome) =
        if not quiet then begin
          print_char
            (if not (o.agreement && o.validity) then 'X'
             else if o.livelock then '!'
             else '.');
          flush stdout
        end
      in
      let report =
        Nemesis.Detect_campaign.run ~jobs:(resolve_jobs jobs) ~on_outcome cfg
      in
      if not quiet then print_newline ();
      Format.printf "%a" Nemesis.Detect_campaign.pp_report report;
      Option.iter
        (fun file ->
          Out_channel.with_open_text file (fun oc ->
              let ppf = Format.formatter_of_out_channel oc in
              Nemesis.Detect_campaign.pp_report_stable ppf report;
              Format.pp_print_flush ppf ());
          Format.printf "stable report written to %s@." file)
        report_out;
      finish
        ~safety_ok:
          (report.Nemesis.Detect_campaign.agreement_failures = []
          && report.Nemesis.Detect_campaign.validity_failures = [])
        ~liveness_ok:(report.Nemesis.Detect_campaign.livelocks = [])
    end
    else begin
      let plan =
        Option.map
          (fun file ->
            let text = In_channel.with_open_text file In_channel.input_all in
            let plan =
              try Nemesis.Plan.of_string text
              with Nemesis.Plan.Parse_error msg ->
                Format.eprintf "cannot parse plan %s: %s@." file msg;
                exit 2
            in
            match Nemesis.Plan.validate ~n plan with
            | [] -> plan
            | problems ->
                Format.eprintf "ill-formed plan %s:@." file;
                List.iter (Format.eprintf "  %s@.") problems;
                exit 2)
          plan_file
      in
      let r =
        Detect.Runner.run ~n ~seed:(Int64.of_int seed) ~params ~mutant:mutant_v
          ~horizon:(horizon + 3000)
          ?install:
            (Option.map (fun p f -> Nemesis.Interp.install_detect p f) plan)
          ()
      in
      Array.iteri
        (fun p d ->
          Format.printf "node %d: %s@." p
            (match d with
            | Some v ->
                Printf.sprintf "decided %b at t=%d" v
                  (Option.get r.Detect.Runner.decided_at.(p))
            | None -> "undecided"))
        r.Detect.Runner.decisions;
      Format.printf
        "agreement %s, validity %s, all live decided: %b, vt %d@."
        (if r.Detect.Runner.agreement_ok then "ok" else "VIOLATED")
        (if r.Detect.Runner.validity_ok then "ok" else "VIOLATED")
        r.Detect.Runner.all_live_decided r.Detect.Runner.virtual_time;
      Format.printf
        "detector: %d heartbeats, %d suspicions (%d false), %d unsuspicions, \
         omega changes %d, stable %s@."
        r.Detect.Runner.heartbeats_sent r.Detect.Runner.suspicions
        r.Detect.Runner.false_suspicions r.Detect.Runner.unsuspicions
        r.Detect.Runner.omega_changes
        (match r.Detect.Runner.omega_stable_at with
        | Some t -> Printf.sprintf "at t=%d" t
        | None -> "never");
      dump_trace ~limit:show_trace (Dsim.Engine.trace r.Detect.Runner.engine);
      finish
        ~safety_ok:(r.Detect.Runner.agreement_ok && r.Detect.Runner.validity_ok)
        ~liveness_ok:r.Detect.Runner.all_live_decided
    end
  in
  let term =
    Term.(
      const run $ n_arg 4 $ seed_arg $ period_arg $ timeout_arg $ cap_arg
      $ mutant_arg $ expect_violation_arg $ campaign_arg $ plans_arg
      $ horizon_arg $ plan_file_arg $ quiet_arg $ jobs_arg $ report_out_arg
      $ show_trace_arg)
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:
         "Failure-detector oracles and indulgent consensus: run the \
          Omega-driven backend under fault plans, audit the indulgence \
          contract (safety unconditional, liveness once the detector \
          stabilises), and sweep detector-accuracy campaigns.")
    term

(* -------------------------------------------------------------- shard -- *)

let shard_cmd =
  let backend_arg =
    let doc = "Consensus backend deciding each shard's log slots: ben-or, phase-king, raft." in
    Arg.(
      value
      & opt
          (enum
             [
               ("ben-or", Rsm.Backend.ben_or);
               ("phase-king", Rsm.Backend.phase_king);
               ("raft", Rsm.Backend.raft);
             ])
          Rsm.Backend.raft
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let shards_arg =
    let doc = "Independent consensus groups the keyspace is hash-partitioned over." in
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"S" ~doc)
  in
  let replicas_arg =
    let doc = "Replicas per shard." in
    Arg.(value & opt int 3 & info [ "replicas" ] ~docv:"R" ~doc)
  in
  let clients_arg =
    let doc = "Simulated clients (closed-loop callback machines)." in
    Arg.(value & opt int 10_000 & info [ "clients" ] ~docv:"K" ~doc)
  in
  let ops_arg =
    let doc = "Operations per client." in
    Arg.(value & opt int 2 & info [ "ops"; "commands" ] ~docv:"M" ~doc)
  in
  let keys_arg =
    let doc = "Keyspace size (Zipf-skewed within each shard's pool)." in
    Arg.(value & opt int 1024 & info [ "keys" ] ~docv:"KEYS" ~doc)
  in
  let tx_pct_arg =
    let doc = "Percentage of operations that are multi-shard transactions." in
    Arg.(value & opt int 10 & info [ "tx-pct" ] ~docv:"PCT" ~doc)
  in
  let tx_span_arg =
    let doc = "Shards each transaction touches." in
    Arg.(value & opt int 2 & info [ "tx-span" ] ~docv:"SPAN" ~doc)
  in
  let zipf_arg =
    let doc = "Zipf skew exponent for key popularity (0 = uniform)." in
    Arg.(value & opt float 1.1 & info [ "zipf" ] ~docv:"S" ~doc)
  in
  let batch_arg =
    let doc = "Max commands batched into one consensus slot." in
    Arg.(value & opt int 64 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let open_loop_arg =
    let doc =
      "Open-loop arrivals with this mean inter-arrival gap (virtual time) \
       instead of closed-loop clients."
    in
    Arg.(value & opt (some float) None & info [ "open-loop" ] ~docv:"GAP" ~doc)
  in
  let no_nemesis_arg =
    let doc = "Disable the default shard-local partition nemesis." in
    Arg.(value & flag & info [ "no-nemesis" ] ~doc)
  in
  let storage_arg =
    let doc =
      "Give every replica a WAL-backed store and open shard-local storage \
       fault windows (torn writes, io errors); audits durability."
    in
    Arg.(value & flag & info [ "storage-faults" ] ~doc)
  in
  let broken_arg =
    let doc =
      "Deliberately broken 2PC: the coordinator commits on the first yes \
       vote.  Exists to demonstrate the cross-shard atomicity checker."
    in
    Arg.(value & flag & info [ "broken-2pc" ] ~doc)
  in
  let expect_violation_arg =
    let doc =
      "Invert the exit code: succeed only when a violation IS found (mutant \
       checks in CI)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let campaign_arg =
    let doc =
      "Run a seed-sweep fault campaign (one generated plan per shard per \
       seed) instead of a single run."
    in
    Arg.(value & flag & info [ "campaign" ] ~doc)
  in
  let plans_arg =
    let doc = "Campaign mode: seeded per-shard fault plans per backend." in
    Arg.(value & opt int 30 & info [ "plans" ] ~docv:"P" ~doc)
  in
  let max_events_arg =
    let doc = "Engine event budget." in
    Arg.(value & opt int 20_000_000 & info [ "max-events" ] ~docv:"E" ~doc)
  in
  let report_out_arg =
    let doc =
      "Campaign mode: write the report, minus timing figures, to this file — \
       byte-identical across job counts, so two runs can be diffed."
    in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  (* The default nemesis: a staggered minority partition inside every
     shard (plus, with --storage-faults, a torn-write and an io-error
     window per shard), all healed well before the run drains. *)
  let default_inject ~shards ~replicas ~partitions ~storage
      (f : Shard.Runner.faults) =
    for s = 0 to shards - 1 do
      let t0 = 100 + (40 * s) in
      if partitions then begin
        let victim = s mod replicas in
        let rest =
          List.filter (fun r -> r <> victim) (List.init replicas Fun.id)
        in
        Dsim.Engine.schedule f.Shard.Runner.engine ~delay:t0 (fun () ->
            f.Shard.Runner.partition ~shard:s [ [ victim ]; rest ]);
        Dsim.Engine.schedule f.Shard.Runner.engine ~delay:(t0 + 500) (fun () ->
            f.Shard.Runner.heal ~shard:s)
      end;
      if storage then
        f.Shard.Runner.set_store_policy ~shard:s
          {
            Store.Policy.none with
            Store.Policy.torn =
              [ Store.Policy.rule ~from_:(t0 + 100) ~until_:(t0 + 160) () ];
            io_error =
              [ Store.Policy.rule ~from_:(t0 + 300) ~until_:(t0 + 360) () ];
          }
    done
  in
  let run seed backend shards replicas clients ops keys tx_pct tx_span zipf
      batch open_loop no_nemesis storage broken_2pc expect_violation campaign
      plans max_events jobs report_out show_trace =
    if shards < 1 || replicas < 1 then begin
      Format.eprintf "need at least one shard and one replica@.";
      exit 2
    end;
    let finish ~violations_found =
      if expect_violation then
        if violations_found then begin
          Format.printf "expected violation found@.";
          exit 0
        end
        else begin
          Format.eprintf "no violation found but one was expected@.";
          exit 1
        end
      else if violations_found then exit 1
    in
    let load =
      {
        Workload.Load.default with
        Workload.Load.clients;
        ops_per_client = ops;
        keys;
        zipf_s = zipf;
        tx_pct;
        tx_span;
      }
    in
    if campaign then begin
      let cfg =
        {
          (Nemesis.Shard_campaign.default_config ~shards ~replicas ()) with
          Nemesis.Shard_campaign.backends = [ backend ];
          plans;
          first_seed = seed;
          clients;
          ops_per_client = ops;
          keys;
          tx_pct;
          batch;
          max_events;
          storage;
          broken_2pc;
        }
      in
      let report =
        Nemesis.Shard_campaign.run ~jobs:(resolve_jobs jobs) cfg
      in
      Format.printf "%a" Nemesis.Shard_campaign.pp_report report;
      Option.iter
        (fun file ->
          Out_channel.with_open_text file (fun oc ->
              let ppf = Format.formatter_of_out_channel oc in
              Nemesis.Shard_campaign.pp_report_stable ppf report;
              Format.pp_print_flush ppf ());
          Format.printf "stable report written to %s@." file)
        report_out;
      finish
        ~violations_found:
          (report.Nemesis.Shard_campaign.safety_failures <> []
          || report.Nemesis.Shard_campaign.atomicity_failures <> []
          || report.Nemesis.Shard_campaign.durability_failures <> [])
    end
    else begin
      let inject =
        if no_nemesis && not storage then None
        else
          Some
            (default_inject ~shards ~replicas ~partitions:(not no_nemesis)
               ~storage)
      in
      let r, s =
        Workload.Shard_load.run_one ~shards ~replicas ~batch ~seed ~load
          ?arrival:
            (Option.map
               (fun mean_gap -> Shard.Runner.Open_loop { mean_gap })
               open_loop)
          ?store:(if storage then Some Rsm.Runner.default_store_config else None)
          ?inject ~broken_2pc ~max_events ~backend ()
      in
      Format.printf
        "Sharded RSM over %s: %d shards x %d replicas, %d clients x %d ops \
         (%d%% tx, span %d, zipf %.2f), seed %d%s@."
        s.Workload.Shard_load.backend_name shards replicas clients ops tx_pct
        tx_span zipf seed
        (if broken_2pc then " (BROKEN 2PC)" else "");
      Format.printf
        "  %d/%d singles acked; %d txs: %d committed, %d aborted (abort rate \
         %.1f%%)@."
        s.Workload.Shard_load.singles_acked r.Shard.Runner.singles_submitted
        r.Shard.Runner.txs_started s.Workload.Shard_load.txs_committed
        s.Workload.Shard_load.txs_aborted
        (100. *. s.Workload.Shard_load.abort_rate);
      Array.iter
        (fun (sr : Shard.Runner.shard_report) ->
          Format.printf
            "  shard %d: %d cmds applied, %d slots, %d instances, %d msgs%s@."
            sr.Shard.Runner.sr_shard sr.Shard.Runner.sr_applied
            sr.Shard.Runner.sr_slots sr.Shard.Runner.sr_instances
            sr.Shard.Runner.sr_messages_sent
            (match sr.Shard.Runner.sr_crashed with
            | [] -> ""
            | cs ->
                Printf.sprintf " (down: %s)"
                  (String.concat "," (List.map (Printf.sprintf "r%d") cs))))
        r.Shard.Runner.shard_reports;
      Format.printf "  aggregate throughput %.1f ops/1000vt over vt %d@."
        s.Workload.Shard_load.throughput s.Workload.Shard_load.virtual_time;
      Option.iter
        (fun l ->
          Format.printf "  single latency %a@." Workload.Stats.pp_summary l)
        s.Workload.Shard_load.single_latency;
      Option.iter
        (fun l -> Format.printf "  2PC tx latency %a@." Workload.Stats.pp_summary l)
        s.Workload.Shard_load.tx_latency;
      let atomicity_problems =
        r.Shard.Runner.atomicity @ r.Shard.Runner.tx_completeness
      in
      List.iter
        (fun v -> Format.printf "  ATOMICITY %a@." Shard.Checker.pp_violation v)
        atomicity_problems;
      Array.iter
        (fun (sr : Shard.Runner.shard_report) ->
          List.iter
            (fun v ->
              Format.printf "  SHARD %d %a@." sr.Shard.Runner.sr_shard
                Rsm.Checker.pp_violation v)
            (sr.Shard.Runner.sr_violations @ sr.Shard.Runner.sr_completeness
           @ sr.Shard.Runner.sr_durability))
        r.Shard.Runner.shard_reports;
      if s.Workload.Shard_load.ok then
        Format.printf
          "cross-shard atomicity, per-shard total order and durability all \
           hold; states agree@.";
      dump_trace ~limit:show_trace r.Shard.Runner.trace;
      finish ~violations_found:(not s.Workload.Shard_load.ok)
    end
  in
  let term =
    Term.(
      const run $ seed_arg $ backend_arg $ shards_arg $ replicas_arg
      $ clients_arg $ ops_arg $ keys_arg $ tx_pct_arg $ tx_span_arg $ zipf_arg
      $ batch_arg $ open_loop_arg $ no_nemesis_arg $ storage_arg $ broken_arg
      $ expect_violation_arg $ campaign_arg $ plans_arg $ max_events_arg
      $ jobs_arg $ report_out_arg $ show_trace_arg)
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run the sharded multi-group RSM: the keyspace hash-partitioned \
          over independent consensus groups, cross-shard transactions \
          through 2PC over the replicated logs, tens of thousands of \
          Zipfian clients, shard-local fault injection, and cross-shard \
          atomicity checking.")
    term

(* ---------------------------------------------------------------- obj -- *)

let obj_cmd =
  let backends_arg =
    let doc =
      "Consensus backend(s) deciding the log: ben-or, phase-king, raft, all."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("ben-or", [ Rsm.Backend.ben_or ]);
               ("phase-king", [ Rsm.Backend.phase_king ]);
               ("raft", [ Rsm.Backend.raft ]);
               ("all", Rsm.Backend.all);
             ])
          [ Rsm.Backend.ben_or ]
      & info [ "backend" ] ~docv:"BACKEND" ~doc)
  in
  let object_arg =
    let doc =
      Printf.sprintf "Sequential object to replicate: %s, or $(b,all)."
        (String.concat ", "
           (List.map (Printf.sprintf "$(b,%s)") Obj.Registry.names))
    in
    Arg.(value & opt string "queue" & info [ "object" ] ~docv:"OBJ" ~doc)
  in
  let clients_arg =
    let doc = "Closed-loop clients driving the object." in
    Arg.(value & opt int 3 & info [ "clients" ] ~docv:"K" ~doc)
  in
  let commands_arg =
    let doc = "Commands per client (clients x commands <= 62, the WG cap)." in
    Arg.(value & opt int 6 & info [ "commands" ] ~docv:"M" ~doc)
  in
  let batch_arg =
    let doc = "Max commands batched into one consensus slot." in
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let crashes_arg =
    let doc = "Replicas to crash-stop (staggered early in the run)." in
    Arg.(value & opt int 0 & info [ "crashes" ] ~docv:"F" ~doc)
  in
  let restart_after_arg =
    let doc = "Restart each crashed replica this much virtual time later." in
    Arg.(value & opt (some int) None & info [ "restart-after" ] ~docv:"T" ~doc)
  in
  let broken_arg =
    let doc =
      "Deliberately broken universal construction: ack the K-th \
       state-changing log entry but discard its effect (default K=1).  \
       Every replica drops the same entry, so digests agree and the \
       total-order checker stays silent — only the Wing–Gong \
       linearizability check convicts it."
    in
    Arg.(
      value
      & opt ~vopt:(Some 1) (some int) None
      & info [ "broken-obj" ] ~docv:"K" ~doc)
  in
  let expect_violation_arg =
    let doc =
      "Invert the exit code: succeed only when a violation IS found (mutant \
       checks in CI)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let campaign_arg =
    let doc =
      "Run a nemesis campaign (objects x backends x fault plans, every run \
       Wing–Gong-checked) instead of a single run."
    in
    Arg.(value & flag & info [ "campaign" ] ~doc)
  in
  let plans_arg =
    let doc = "Campaign mode: fault plans (= seeds) per object x backend." in
    Arg.(value & opt int 5 & info [ "plans" ] ~docv:"P" ~doc)
  in
  let storage_arg =
    let doc =
      "Campaign mode: WAL-backed replicas, plans draw storage faults."
    in
    Arg.(value & flag & info [ "storage-faults" ] ~doc)
  in
  let report_out_arg =
    let doc =
      "Campaign mode: write the report, minus timing figures, to this file — \
       byte-identical across job counts, so two runs can be diffed."
    in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let run n seed backends object_name clients commands batch crashes
      restart_after drop_nth expect_violation campaign plans storage jobs
      report_out =
    let objects =
      if object_name = "all" then Obj.Registry.names
      else if List.mem object_name Obj.Registry.names then [ object_name ]
      else begin
        Format.eprintf "unknown object %S (try one of: %s, all)@." object_name
          (String.concat ", " Obj.Registry.names);
        exit 2
      end
    in
    if clients * commands > Workload.Obj_load.max_history then begin
      Format.eprintf
        "clients x commands = %d exceeds the Wing–Gong history cap (%d)@."
        (clients * commands) Workload.Obj_load.max_history;
      exit 2
    end;
    let finish ~violations_found =
      if expect_violation then
        if violations_found then begin
          Format.printf "expected violation found@.";
          exit 0
        end
        else begin
          Format.eprintf "no violation found but one was expected@.";
          exit 1
        end
      else if violations_found then exit 1
    in
    if campaign then begin
      let cfg =
        {
          (Nemesis.Obj_campaign.default_config ~n ()) with
          Nemesis.Obj_campaign.backends;
          objects;
          plans;
          first_seed = seed;
          clients;
          commands;
          batch;
          storage;
        }
      in
      let report = Nemesis.Obj_campaign.run ~jobs:(resolve_jobs jobs) cfg in
      Format.printf "%a" Nemesis.Obj_campaign.pp_report report;
      Option.iter
        (fun file ->
          Out_channel.with_open_text file (fun oc ->
              let ppf = Format.formatter_of_out_channel oc in
              Nemesis.Obj_campaign.pp_report_stable ppf report;
              Format.pp_print_flush ppf ());
          Format.printf "stable report written to %s@." file)
        report_out;
      finish ~violations_found:(report.Nemesis.Obj_campaign.failures <> [])
    end
    else begin
      let summaries =
        List.concat_map
          (fun object_name ->
            List.map
              (fun backend ->
                Workload.Obj_load.run ~n ~clients ~commands ~batch ~crashes
                  ?restart_after ~seed ~quiet:true ?drop_nth ~backend
                  ~object_name ())
              backends)
          objects
      in
      Workload.Obj_load.table summaries;
      List.iter
        (fun (s : Workload.Obj_load.summary) ->
          List.iter
            (Format.printf "  WG %s/%s: %s@." s.Workload.Obj_load.object_name
               s.Workload.Obj_load.backend_name)
            s.Workload.Obj_load.wg_violations)
        summaries;
      finish
        ~violations_found:
          (List.exists (fun s -> not s.Workload.Obj_load.ok) summaries)
    end
  in
  let term =
    Term.(
      const run $ n_arg 5 $ seed_arg $ backends_arg $ object_arg $ clients_arg
      $ commands_arg $ batch_arg $ crashes_arg $ restart_after_arg $ broken_arg
      $ expect_violation_arg $ campaign_arg $ plans_arg $ storage_arg
      $ jobs_arg $ report_out_arg)
  in
  Cmd.v
    (Cmd.info "obj"
       ~doc:
         "Run an arbitrary linearizable object through the universal \
          construction: a sequential spec lifted onto the replicated \
          consensus log, its concurrent history checked against the spec \
          with the Wing–Gong linearizability checker.")
    term

(* ------------------------------------------------------------- mcheck -- *)

let mcheck_cmd =
  let model_arg =
    let doc =
      Printf.sprintf "Model to explore: %s."
        (String.concat ", " (List.map (Printf.sprintf "$(b,%s)") Mcheck.Models.names))
    in
    Arg.(value & opt string "ben-or" & info [ "model" ] ~docv:"MODEL" ~doc)
  in
  let n_opt_arg =
    let doc = "Number of processors (default: per-model)." in
    Arg.(value & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let depth_arg =
    let doc =
      "Branch-point budget per execution: beyond it, runs continue under \
       default choices and count as truncated."
    in
    Arg.(value & opt int 12 & info [ "depth" ] ~docv:"D" ~doc)
  in
  let fault_budget_arg =
    let doc = "Maximum oracle-injected message drops per execution." in
    Arg.(value & opt int 0 & info [ "fault-budget" ] ~docv:"K" ~doc)
  in
  let reduction_arg =
    let doc =
      "Partial-order reduction: $(b,none) explores every same-tick ordering, \
       $(b,sleep) collapses commuting deliveries to distinct recipients \
       (default), $(b,dpor) adds vector-clock race analysis and explores \
       only genuine reversals (with fingerprint caching when the model \
       supports it) — never more schedules than sleep."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("none", Mcheck.Explorer.Rnone);
               ("sleep", Mcheck.Explorer.Rsleep);
               ("dpor", Mcheck.Explorer.Rdpor);
             ])
          Mcheck.Explorer.Rsleep
      & info [ "reduction" ] ~docv:"MODE" ~doc)
  in
  let no_reduce_arg =
    let doc = "Alias for $(b,--reduction none)." in
    Arg.(value & flag & info [ "no-reduce" ] ~doc)
  in
  let prune_arg =
    let doc =
      "Enable fingerprint pruning (models without a fingerprint ignore it; \
       sound at any fault budget for fingerprints that fold in wire state \
       and remaining budget — see DESIGN.md §11 and §16)."
    in
    Arg.(value & flag & info [ "prune" ] ~doc)
  in
  let audit_arg =
    let doc =
      "Collision audit: continue every Nth would-be fingerprint prune under \
       forced defaults and flag violations the pruned set would have missed \
       (0 = off)."
    in
    Arg.(value & opt int 0 & info [ "audit" ] ~docv:"N" ~doc)
  in
  let frontier_arg =
    let doc =
      "Target number of work-stealing partitions the frontier expands to \
       before parallel exploration; fixed per config, so reports are \
       byte-identical at every $(b,--jobs)."
    in
    Arg.(value & opt int 16 & info [ "frontier" ] ~docv:"P" ~doc)
  in
  let pct_arg =
    let doc =
      "Sample randomized schedules with PCT priorities instead of \
       exhaustive exploration ($(b,--schedules), $(b,--pct-d), \
       $(b,--pct-steps), $(b,--pct-seed) configure the sampler)."
    in
    Arg.(value & flag & info [ "pct" ] ~doc)
  in
  let schedules_arg =
    let doc = "PCT sample budget: how many randomized schedules to run." in
    Arg.(value & opt int 1000 & info [ "schedules" ] ~docv:"S" ~doc)
  in
  let pct_d_arg =
    let doc = "PCT bug depth (d-1 priority change points per schedule)." in
    Arg.(value & opt int 3 & info [ "pct-d" ] ~docv:"D" ~doc)
  in
  let pct_steps_arg =
    let doc = "PCT horizon the priority change points are drawn from." in
    Arg.(value & opt int 64 & info [ "pct-steps" ] ~docv:"T" ~doc)
  in
  let pct_seed_arg =
    let doc = "PCT base seed (schedule i uses a stream derived from seed+i)." in
    Arg.(value & opt int 1 & info [ "pct-seed" ] ~docv:"SEED" ~doc)
  in
  let max_schedules_arg =
    let doc = "Cap executions per root partition (0 = unlimited)." in
    Arg.(value & opt int 0 & info [ "max-schedules" ] ~docv:"M" ~doc)
  in
  let stop_at_first_arg =
    let doc = "Stop each partition at its first violating execution." in
    Arg.(value & flag & info [ "stop-at-first" ] ~doc)
  in
  let report_out_arg =
    let doc =
      "Write the exploration report, minus timing figures, to this file — \
       byte-identical across job counts, so two runs can be diffed."
    in
    Arg.(value & opt (some string) None & info [ "report-out" ] ~docv:"FILE" ~doc)
  in
  let dump_ce_arg =
    let doc =
      "Minimize the first counterexample and write it as a replay file."
    in
    Arg.(value & opt (some string) None & info [ "dump-ce" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a previously dumped counterexample file instead of exploring \
       (the model and bounds come from the file)."
    in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let expect_violation_arg =
    let doc =
      "Invert the exit code: succeed only when a violation IS found (mutant \
       checks in CI)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let list_models_arg =
    let doc = "List the explorable models and exit." in
    Arg.(value & flag & info [ "list-models" ] ~doc)
  in
  let run model n depth fault_budget reduction no_reduce prune audit frontier
      pct schedules pct_d pct_steps pct_seed max_schedules stop_at_first jobs
      report_out dump_ce replay_file expect_violation list_models =
    let finish ~violations_found =
      if expect_violation then
        if violations_found then begin
          Format.printf "expected violation found@.";
          exit 0
        end
        else begin
          Format.eprintf "no violation found but one was expected@.";
          exit 1
        end
      else if violations_found then exit 1
    in
    if list_models then
      List.iter
        (fun name ->
          let m = Mcheck.Models.of_name name ~fault_budget:0 in
          Format.printf "%-14s %s@." name m.Mcheck.Models.describe)
        Mcheck.Models.names
    else
      match replay_file with
      | Some file ->
          let r = Mcheck.Replay.load file in
          let config =
            {
              Mcheck.Explorer.default_config with
              depth = r.Mcheck.Replay.depth;
              fault_budget = r.Mcheck.Replay.fault_budget;
            }
          in
          let m = Mcheck.Models.of_name ?n r.Mcheck.Replay.model ~fault_budget in
          let x = Mcheck.Explorer.replay ~config m (Mcheck.Replay.entries r) in
          Format.printf "replayed %s: model=%s choices=%d@." file
            r.Mcheck.Replay.model
            (List.length r.Mcheck.Replay.choices);
          Format.printf "  digest: %s@." x.Mcheck.Explorer.x_digest;
          if x.Mcheck.Explorer.x_violations = [] then
            Format.printf "  no violations@."
          else begin
            Format.printf "  violations:@.";
            List.iter (Format.printf "    - %s@.") x.Mcheck.Explorer.x_violations
          end;
          finish ~violations_found:(x.Mcheck.Explorer.x_violations <> [])
      | None when pct ->
          let config =
            {
              Mcheck.Pct.schedules;
              d = pct_d;
              steps = pct_steps;
              seed = pct_seed;
              fault_budget;
            }
          in
          let m = Mcheck.Models.of_name ?n model ~fault_budget in
          let report = Mcheck.Pct.run ~jobs:(resolve_jobs jobs) ~config m in
          Format.printf "%a" Mcheck.Pct.pp_report report;
          Option.iter
            (fun file ->
              Out_channel.with_open_text file (fun oc ->
                  let ppf = Format.formatter_of_out_channel oc in
                  Mcheck.Pct.pp_report_stable ppf report;
                  Format.pp_print_flush ppf ());
              Format.printf "stable report written to %s@." file)
            report_out;
          Option.iter
            (fun file ->
              match report.Mcheck.Pct.pr_counterexample with
              | None -> Format.printf "no counterexample to dump@."
              | Some choices -> (
                  let mconfig =
                    { Mcheck.Explorer.default_config with depth; fault_budget }
                  in
                  let entries = Mcheck.Explorer.entries_of_choices choices in
                  match Mcheck.Explorer.minimize ~config:mconfig m entries with
                  | None ->
                      Format.eprintf
                        "counterexample did not reproduce under replay@."
                  | Some entries ->
                      Mcheck.Replay.save file
                        (Mcheck.Replay.of_entries ~model:m.Mcheck.Models.name
                           ~config:mconfig entries);
                      Format.printf
                        "minimized counterexample (%d choices, %d non-default) \
                         written to %s@."
                        (List.length entries)
                        (Mcheck.Explorer.nondefault_count entries)
                        file))
            dump_ce;
          finish ~violations_found:(report.Mcheck.Pct.pr_violating > 0)
      | None ->
          let config =
            {
              Mcheck.Explorer.depth;
              fault_budget;
              reduction =
                (if no_reduce then Mcheck.Explorer.Rnone else reduction);
              prune;
              audit;
              frontier;
              max_schedules =
                (if max_schedules <= 0 then max_int else max_schedules);
              stop_at_first;
            }
          in
          let m = Mcheck.Models.of_name ?n model ~fault_budget in
          let report =
            Mcheck.Explorer.explore ~jobs:(resolve_jobs jobs) ~config m
          in
          Format.printf "%a" Mcheck.Explorer.pp_report report;
          Option.iter
            (fun file ->
              Out_channel.with_open_text file (fun oc ->
                  let ppf = Format.formatter_of_out_channel oc in
                  Mcheck.Explorer.pp_report_stable ppf report;
                  Format.pp_print_flush ppf ());
              Format.printf "stable report written to %s@." file)
            report_out;
          Option.iter
            (fun file ->
              match report.Mcheck.Explorer.r_counterexample with
              | None -> Format.printf "no counterexample to dump@."
              | Some x -> (
                  match
                    Mcheck.Explorer.minimize ~config m
                      x.Mcheck.Explorer.x_trail
                  with
                  | None ->
                      Format.eprintf
                        "counterexample did not reproduce under replay@."
                  | Some entries ->
                      Mcheck.Replay.save file
                        (Mcheck.Replay.of_entries
                           ~model:m.Mcheck.Models.name ~config entries);
                      Format.printf
                        "minimized counterexample (%d choices, %d \
                         non-default) written to %s@."
                        (List.length entries)
                        (Mcheck.Explorer.nondefault_count entries)
                        file))
            dump_ce;
          finish
            ~violations_found:(report.Mcheck.Explorer.r_violating > 0)
  in
  let term =
    Term.(
      const run $ model_arg $ n_opt_arg $ depth_arg $ fault_budget_arg
      $ reduction_arg $ no_reduce_arg $ prune_arg $ audit_arg $ frontier_arg
      $ pct_arg $ schedules_arg $ pct_d_arg $ pct_steps_arg $ pct_seed_arg
      $ max_schedules_arg $ stop_at_first_arg $ jobs_arg $ report_out_arg
      $ dump_ce_arg $ replay_arg $ expect_violation_arg $ list_models_arg)
  in
  Cmd.v
    (Cmd.info "mcheck"
       ~doc:
         "Systematic schedule exploration: enumerate message-delivery orders \
          and drop decisions up to a depth bound (with sleep-set or DPOR \
          partial-order reduction), or sample randomized PCT schedules; \
          check every execution with the property monitors and minimize \
          counterexamples into replay files.")
    term

(* -------------------------------------------------------- experiments -- *)

let experiments_cmd =
  let scale_arg =
    let doc = "Workload scale: quick or full." in
    Arg.(
      value
      & opt (enum [ ("quick", Workload.Experiments.Quick); ("full", Workload.Experiments.Full) ])
          Workload.Experiments.Quick
      & info [ "scale" ] ~docv:"SCALE" ~doc)
  in
  let ids_arg =
    let doc = "Experiment ids to run (e1..e8); default all." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let csv_arg =
    let doc = "Also write machine-readable eN.csv files into this directory (created if missing)." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)
  in
  let run scale ids csv_dir jobs =
    let only = match ids with [] -> None | ids -> Some ids in
    Option.iter
      (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
      csv_dir;
    Workload.Experiments.run_all ~scale ?only ?csv_dir
      ~jobs:(resolve_jobs jobs) Format.std_formatter
  in
  let term = Term.(const run $ scale_arg $ ids_arg $ csv_arg $ jobs_arg) in
  Cmd.v (Cmd.info "experiments" ~doc:"Regenerate the experiment tables (E1..E8).") term

let main_cmd =
  let doc = "object-oriented consensus: decomposed consensus algorithms under simulation" in
  let info = Cmd.info "oocon" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      benor_cmd;
      phase_king_cmd;
      raft_cmd;
      sharedmem_cmd;
      rsm_cmd;
      obj_cmd;
      store_cmd;
      shard_cmd;
      nemesis_cmd;
      detect_cmd;
      mcheck_cmd;
      experiments_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
